// Google-benchmark microbenchmarks for the kernel substrate: residue
// dispatch variants, fused vs unfused elementwise chains, and the
// shape-function / allocation primitives whose cost Table 4 aggregates.
#include <benchmark/benchmark.h>

#include "src/codegen/dense_kernels.h"
#include "src/codegen/dispatch.h"
#include "src/kernels/registry.h"
#include "src/runtime/ndarray.h"
#include "src/support/rng.h"

using namespace nimble;  // NOLINT
using runtime::DataType;
using runtime::NDArray;

namespace {

NDArray RandomArr(runtime::ShapeVec shape, uint64_t seed) {
  support::Rng rng(seed);
  NDArray arr = NDArray::Empty(std::move(shape), DataType::Float32());
  arr.FillUniform(rng);
  return arr;
}

void BM_DenseSpecializedResidue(benchmark::State& state) {
  int64_t m = state.range(0), n = 256, k = 256;
  NDArray x = RandomArr({m, k}, 1), w = RandomArr({n, k}, 2);
  NDArray out = NDArray::Empty({m, n}, DataType::Float32());
  codegen::DenseDispatchTable table(codegen::kTileRows);
  for (auto _ : state) {
    table.Run(x, w, out);
    benchmark::DoNotOptimize(out.raw_data());
  }
}
BENCHMARK(BM_DenseSpecializedResidue)->Arg(61)->Arg(64)->Arg(127);

void BM_DenseCheckedFallback(benchmark::State& state) {
  int64_t m = state.range(0), n = 256, k = 256;
  NDArray x = RandomArr({m, k}, 1), w = RandomArr({n, k}, 2);
  NDArray out = NDArray::Empty({m, n}, DataType::Float32());
  for (auto _ : state) {
    codegen::DenseSymbolicChecked(x.data<float>(), w.data<float>(),
                                  out.data<float>(), m, n, k);
    benchmark::DoNotOptimize(out.raw_data());
  }
}
BENCHMARK(BM_DenseCheckedFallback)->Arg(61)->Arg(64)->Arg(127);

void BM_UnfusedElemwiseChain(benchmark::State& state) {
  kernels::EnsureKernelsRegistered();
  int64_t n = state.range(0);
  NDArray a = RandomArr({n}, 3), b = RandomArr({n}, 4);
  NDArray t1 = NDArray::Empty({n}, DataType::Float32());
  NDArray t2 = NDArray::Empty({n}, DataType::Float32());
  NDArray t3 = NDArray::Empty({n}, DataType::Float32());
  for (auto _ : state) {
    kernels::RunKernel("add", {a, b}, {t1});
    kernels::RunKernel("sigmoid", {t1}, {t2});
    kernels::RunKernel("multiply", {t2, a}, {t3});
    benchmark::DoNotOptimize(t3.raw_data());
  }
}
BENCHMARK(BM_UnfusedElemwiseChain)->Arg(1 << 14)->Arg(1 << 18);

void BM_FusedElemwiseChain(benchmark::State& state) {
  kernels::EnsureKernelsRegistered();
  int64_t n = state.range(0);
  NDArray a = RandomArr({n}, 3), b = RandomArr({n}, 4);
  NDArray out = NDArray::Empty({n}, DataType::Float32());
  ir::Attrs attrs;
  // add(a, b) ; sigmoid ; multiply by a — same chain as the unfused case.
  attrs.Set("steps", std::vector<int64_t>{0, 1, 1, 6, 0, 0, 2, 1, 0});
  for (auto _ : state) {
    kernels::RunKernel("fused_elemwise", {a, b}, {out}, attrs);
    benchmark::DoNotOptimize(out.raw_data());
  }
}
BENCHMARK(BM_FusedElemwiseChain)->Arg(1 << 14)->Arg(1 << 18);

void BM_PoolingAllocator(benchmark::State& state) {
  runtime::PoolingAllocator pool;
  for (auto _ : state) {
    auto buf = pool.Alloc(1 << 16, 64, runtime::Device::CPU());
    benchmark::DoNotOptimize(buf->data);
  }
}
BENCHMARK(BM_PoolingAllocator);

void BM_NaiveAllocator(benchmark::State& state) {
  runtime::NaiveAllocator naive;
  for (auto _ : state) {
    auto buf = naive.Alloc(1 << 16, 64, runtime::Device::CPU());
    benchmark::DoNotOptimize(buf->data);
  }
}
BENCHMARK(BM_NaiveAllocator);

}  // namespace

BENCHMARK_MAIN();
