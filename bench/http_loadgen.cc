// Closed-loop HTTP load generator: the whole stack over loopback.
//
// Measures what ISSUE 5 makes measurable for the first time — requests
// flowing socket -> epoll loop -> codec -> RequestQueue -> batch scheduler
// -> packed VM execution -> response — and compares the sustained req/s
// against the same pipeline driven in-process (serve_throughput's packed
// path at batch 8), so the front end's overhead is a number, not a hope.
//
// Three phases, each validated against sequential single-VM execution
// (bit-identical bytes — throughput with wrong answers is not throughput):
//   1. in-process baseline: repeated burst submission straight into
//      serve::Server, packed tensor batching at batch 8;
//   2. HTTP closed-loop: N keep-alive client threads over loopback, each
//      sending the binary protocol (raw float32 + X-Nimble-Shape) by
//      default, --json-body for the JSON protocol. The phase-2 server also
//      registers the same executable as a continuous model "c" (4 slots)
//      and every 8th request routes there, so the step-level observability
//      plane is exercised by real wire traffic;
//   3. overload: a deliberately tiny pipeline (queue 4, 1 worker, 1
//      pending batch) hammered by extra clients — backpressure must be
//      429s on the wire, never 5xx, hangs, or drops.
//
// --json writes BENCH_http.json with all three phases' numbers for CI,
// plus four observability artifacts scraped from the phase-2 server
// after it drains (so every counter and step record has settled):
// METRICS.txt (the GET /metrics Prometheus exposition — counters must
// match the loadgen's own counts, checked by scripts/check_metrics.sh),
// TRACE.json (GET /debug/trace chrome-trace export, must be nonempty),
// STEPS.json (GET /debug/steps?model=c step-journal tail — splices,
// retires, and active-row counts are cross-checked against the loadgen's
// own continuous tallies), and MEMORY.json (GET /debug/memory allocator
// telemetry — post-drain live bytes, pool counters, and the per-site copy
// ledger, cross-checked against METRICS.txt). The phase-2 server also
// configures a generous memory soft limit (1 GiB — never trips at this
// scale) so the pressure plane polls and exports for real.
//
// --trace-overhead additionally A/B-measures the cost of always-on
// telemetry: alternating closed-loop runs with tracing AND the memory
// ledgers enabled vs both disabled (best-of per configuration, so
// scheduler noise can't masquerade as overhead); CI fails when telemetry
// costs more than 3% of peak req/s.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/compiler.h"
#include "src/models/lstm.h"
#include "src/models/workloads.h"
#include "src/net/http_client.h"
#include "src/net/http_server.h"
#include "src/net/json.h"
#include "src/obs/memory.h"
#include "src/serve/server.h"
#include "src/vm/vm.h"

using namespace nimble;  // NOLINT

namespace {

using Clock = std::chrono::steady_clock;

/// Production-mix lengths (mirrors serve_throughput): traffic concentrated
/// on recurring exact lengths, several sharing one scheduler bucket.
std::vector<int64_t> SampleProductionMixLengths(int count, support::Rng& rng) {
  const int64_t hot[] = {18, 22, 27, 30, 35, 38, 59, 62};
  const int weight[] = {22, 18, 15, 12, 11, 9, 7, 6};  // percent
  std::vector<int64_t> lengths;
  lengths.reserve(count);
  for (int i = 0; i < count; ++i) {
    int pick = static_cast<int>(rng.Next() % 100);
    int acc = 0;
    int64_t len = hot[7];
    for (int j = 0; j < 8; ++j) {
      acc += weight[j];
      if (pick < acc) {
        len = hot[j];
        break;
      }
    }
    lengths.push_back(len);
  }
  return lengths;
}

struct Workload {
  std::shared_ptr<vm::Executable> exec;
  int64_t input_size = 128;
  std::vector<int64_t> lengths;
  std::vector<runtime::NDArray> inputs;
  std::vector<runtime::NDArray> expected;  // sequential single-VM results
  /// Pre-serialized request bodies (the client threads' send cost is a
  /// write, not a serialization).
  std::vector<std::string> binary_bodies;
  std::vector<std::string> json_bodies;
};

Workload MakeWorkload(int requests) {
  Workload w;
  models::LSTMConfig config;
  config.input_size = w.input_size;
  config.hidden_size = 256;
  config.emit_batched = true;
  auto model = models::BuildLSTM(config);
  core::CompileOptions opts;
  opts.batched_entries = {model.batched_spec};
  w.exec = core::Compile(model.module, opts).executable;

  support::Rng rng(29);
  w.lengths = SampleProductionMixLengths(requests, rng);
  vm::VirtualMachine sequential(w.exec);
  for (int64_t len : w.lengths) {
    runtime::NDArray x = models::RandomSequence(len, config.input_size, rng);
    w.inputs.push_back(x);
    w.expected.push_back(runtime::AsTensor(sequential.Invoke(
        "main", {runtime::MakeTensor(x),
                 runtime::MakeTensor(runtime::NDArray::Scalar<int64_t>(len))})));

    w.binary_bodies.emplace_back(static_cast<const char*>(x.raw_data()),
                                 x.nbytes());

    net::Json tensor = net::Json::Object();
    net::Json shape = net::Json::Array();
    shape.Append(len);
    shape.Append(w.input_size);
    tensor.Set("shape", std::move(shape));
    net::Json data = net::Json::Array();
    const float* src = x.data<float>();
    for (int64_t i = 0; i < x.num_elements(); ++i) {
      data.Append(static_cast<double>(src[i]));
    }
    tensor.Set("data", std::move(data));
    net::Json scalar = net::Json::Object();
    scalar.Set("scalar", len);
    net::Json inputs_json = net::Json::Array();
    inputs_json.Append(std::move(tensor));
    inputs_json.Append(std::move(scalar));
    net::Json body = net::Json::Object();
    body.Set("inputs", std::move(inputs_json));
    body.Set("length", len);
    w.json_bodies.push_back(body.Dump());
  }
  return w;
}

serve::ModelConfig MakeModelConfig(const Workload& w, size_t queue_capacity,
                                   int max_batch) {
  serve::ModelConfig model;
  model.exec = w.exec;
  model.queue_capacity = queue_capacity;
  model.batch.max_batch_size = max_batch;
  model.batch.max_wait_micros = 100000;
  model.batch.tensor_batching = true;
  model.batch.bucket_edges = {16, 24, 32, 40, 48, 56, 64, 96, 128};
  return model;
}

/// Phase 1: repeated burst submission straight into the server (the
/// serve_throughput packed-path shape: deep queue, batch 8, 1 worker).
struct InprocResult {
  double rps = 0.0;
  double p99_us = 0.0;
  bool correct = true;
};

InprocResult RunInprocess(const Workload& w, int workers, int max_batch,
                          double seconds) {
  serve::ServeConfig config;
  config.num_workers = workers;
  serve::Server server(config);
  server.AddModel("m", MakeModelConfig(w, 256, max_batch));
  server.Start();

  InprocResult result;
  int64_t completed = 0;
  auto t0 = Clock::now();
  auto deadline = t0 + std::chrono::duration<double>(seconds);
  while (Clock::now() < deadline) {
    std::vector<std::future<runtime::ObjectRef>> futures;
    futures.reserve(w.inputs.size());
    for (size_t i = 0; i < w.inputs.size(); ++i) {
      futures.push_back(server.Submit(
          "m",
          {runtime::MakeTensor(w.inputs[i]),
           runtime::MakeTensor(
               runtime::NDArray::Scalar<int64_t>(w.lengths[i]))},
          w.lengths[i]));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      runtime::ObjectRef out = futures[i].get();  // keep the result alive
      const runtime::NDArray& got = runtime::AsTensor(out);
      if (got.shape() != w.expected[i].shape() ||
          std::memcmp(got.raw_data(), w.expected[i].raw_data(),
                      got.nbytes()) != 0) {
        result.correct = false;
      }
      completed++;
    }
  }
  double elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  server.Drain();
  result.rps = static_cast<double>(completed) / elapsed;
  result.p99_us = server.stats().p99_latency_us;
  return result;
}

/// Phase 2/3: closed-loop HTTP clients against a running front end.
struct HttpResult {
  int64_t ok200 = 0;
  int64_t shed429 = 0;
  int64_t server_5xx = 0;
  int64_t transport_errors = 0;
  int64_t mismatched = 0;
  /// The subset of ok200/shed429 that went to the continuous model "c",
  /// plus the total sequence length it served (== the live row steps its
  /// slot map must account for — cross-checked against /metrics and
  /// STEPS.json by scripts/check_metrics.sh).
  int64_t ok200_c = 0;
  int64_t shed429_c = 0;
  int64_t rows_c = 0;
  double elapsed_seconds = 0.0;
  double rps = 0.0;  // completed (200) per second
  double p50_us = 0.0, p99_us = 0.0;
};

/// `continuous_every` > 0 routes every Nth request of each client to the
/// continuous model "c" (same executable, same expected bytes); 0 sends
/// everything to the packed model "m".
HttpResult RunHttpClosedLoop(const Workload& w, uint16_t port, int clients,
                             double seconds, bool json_body,
                             int continuous_every = 0) {
  std::vector<std::vector<double>> latencies(clients);
  std::vector<HttpResult> per_thread(clients);
  auto t0 = Clock::now();
  auto deadline = t0 + std::chrono::duration<double>(seconds);

  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::BlockingHttpClient client("127.0.0.1", port);
      HttpResult& r = per_thread[c];
      size_t i = static_cast<size_t>(c) % w.inputs.size();
      int64_t iteration = 0;
      while (Clock::now() < deadline) {
        bool to_c =
            continuous_every > 0 && iteration % continuous_every == 0;
        iteration++;
        const char* target =
            to_c ? "/v1/models/c:predict" : "/v1/models/m:predict";
        auto sent = Clock::now();
        net::BlockingHttpClient::Response response;
        if (json_body) {
          response = client.Post(target, w.json_bodies[i]);
        } else {
          std::string shape = std::to_string(w.lengths[i]) + "," +
                              std::to_string(w.input_size);
          response = client.Request(
              "POST", target, w.binary_bodies[i],
              {{"Content-Type", "application/octet-stream"},
               {"Accept", "application/octet-stream"},
               {"X-Nimble-Shape", shape},
               {"X-Nimble-Length", std::to_string(w.lengths[i])}});
        }
        double us = std::chrono::duration<double, std::micro>(Clock::now() -
                                                              sent)
                        .count();
        if (!response.ok) {
          r.transport_errors++;
        } else if (response.status == 200) {
          r.ok200++;
          if (to_c) {
            r.ok200_c++;
            r.rows_c += w.lengths[i];
          }
          latencies[c].push_back(us);
          // Validate the payload (binary: exact bytes; JSON: exact floats
          // after the 9-digit round-trip).
          if (json_body) {
            net::Json doc = net::Json::Parse(response.body);
            const net::Json* data = doc.is_object() ? doc.Find("data")
                                                    : nullptr;
            const float* want = w.expected[i].data<float>();
            int64_t n = w.expected[i].num_elements();
            if (data == nullptr ||
                static_cast<int64_t>(data->items().size()) != n) {
              r.mismatched++;
            } else {
              for (int64_t j = 0; j < n; ++j) {
                if (static_cast<float>(data->items()[j].number()) !=
                    want[j]) {
                  r.mismatched++;
                  break;
                }
              }
            }
          } else if (response.body.size() != w.expected[i].nbytes() ||
                     std::memcmp(response.body.data(),
                                 w.expected[i].raw_data(),
                                 response.body.size()) != 0) {
            r.mismatched++;
          }
        } else if (response.status == 429) {
          r.shed429++;
          if (to_c) r.shed429_c++;
          // A shed client backs off briefly (far shorter than the server's
          // conservative Retry-After hint, so overload pressure persists
          // and the phase still measures shedding, not sleeping).
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        } else if (response.status >= 500) {
          r.server_5xx++;
        }
        i = (i + static_cast<size_t>(clients)) % w.inputs.size();
      }
    });
  }
  for (auto& t : threads) t.join();

  HttpResult total;
  total.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  std::vector<double> all_latencies;
  for (int c = 0; c < clients; ++c) {
    total.ok200 += per_thread[c].ok200;
    total.shed429 += per_thread[c].shed429;
    total.server_5xx += per_thread[c].server_5xx;
    total.transport_errors += per_thread[c].transport_errors;
    total.mismatched += per_thread[c].mismatched;
    total.ok200_c += per_thread[c].ok200_c;
    total.shed429_c += per_thread[c].shed429_c;
    total.rows_c += per_thread[c].rows_c;
    all_latencies.insert(all_latencies.end(), latencies[c].begin(),
                         latencies[c].end());
  }
  total.rps = static_cast<double>(total.ok200) / total.elapsed_seconds;
  total.p50_us = serve::ServeStats::Percentile(all_latencies, 50.0);
  total.p99_us = serve::ServeStats::Percentile(all_latencies, 99.0);
  return total;
}

/// Scrapes one observability endpoint off the live front end into a file.
/// Returns false (and says why) when the scrape failed or came back empty.
bool DumpEndpoint(uint16_t port, const std::string& target,
                  const char* path) {
  net::BlockingHttpClient client("127.0.0.1", port);
  auto response = client.Get(target);
  if (!response.ok || response.status != 200 || response.body.empty()) {
    std::fprintf(stderr, "scrape of %s failed (status %d)\n", target.c_str(),
                 response.status);
    return false;
  }
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  std::fwrite(response.body.data(), 1, response.body.size(), f);
  std::fclose(f);
  std::printf("wrote %s (%zu bytes from %s)\n", path, response.body.size(),
              target.c_str());
  return true;
}

/// --trace-overhead: peak closed-loop req/s with tracing on vs off,
/// alternating short runs and keeping each configuration's best so one
/// noisy run can't fake (or hide) an overhead.
struct TraceOverheadResult {
  double rps_on = 0.0;
  double rps_off = 0.0;
  double overhead_pct = 0.0;
};

TraceOverheadResult MeasureTraceOverhead(const Workload& w, int workers,
                                         int max_batch, int clients,
                                         double seconds, bool json_body) {
  TraceOverheadResult result;
  constexpr int kRounds = 2;
  double per_run = seconds / (2 * kRounds);
  for (int round = 0; round < kRounds; ++round) {
    for (bool tracing : {true, false}) {
      serve::ServeConfig config;
      config.num_workers = workers;
      config.trace.enabled = tracing;
      // The memory ledgers toggle with tracing, so the A/B prices the whole
      // telemetry plane (copy ledger + pool events), not tracing alone.
      obs::SetMemoryTelemetryEnabled(tracing);
      serve::Server server(config);
      server.AddModel("m", MakeModelConfig(w, 256, max_batch));
      server.Start();
      net::HttpServer front(&server);
      front.Start();
      HttpResult run = RunHttpClosedLoop(w, front.port(), clients, per_run,
                                         json_body);
      front.Stop();
      server.Drain();
      double& best = tracing ? result.rps_on : result.rps_off;
      best = std::max(best, run.rps);
    }
  }
  obs::SetMemoryTelemetryEnabled(true);
  if (result.rps_off > 0.0) {
    result.overhead_pct = std::max(
        0.0, (result.rps_off - result.rps_on) / result.rps_off * 100.0);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int requests = 192;
  int clients = 32;
  int workers = 1;
  double seconds = 3.0;
  bool write_json = false;
  bool json_body = false;
  bool trace_overhead = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      write_json = true;
    } else if (arg == "--json-body") {
      json_body = true;
    } else if (arg == "--trace-overhead") {
      trace_overhead = true;
    } else if (arg == "--clients" && i + 1 < argc) {
      clients = std::atoi(argv[++i]);
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else if (arg == "--seconds" && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else {
      requests = std::atoi(argv[i]);
    }
  }
  const int kBatch = 8;

  unsigned cores = std::thread::hardware_concurrency();
  std::printf("host: %u hardware thread(s)\n", cores);
  if (cores <= 1) {
    std::printf(
        "NOTE: single-core host — clients, event loop, and workers share "
        "one CPU;\n      the HTTP-vs-in-process ratio is the honest "
        "front-end overhead.\n");
  }

  bench::PrintHeader(
      "HTTP loadgen: LSTM (in 128, hidden 256), production-mix lengths, " +
      std::to_string(requests) + " distinct requests, batch " +
      std::to_string(kBatch) + ", " + std::to_string(workers) +
      " worker(s), " + std::to_string(clients) + " closed-loop clients, " +
      (json_body ? "JSON" : "binary") + " bodies");
  Workload w = MakeWorkload(requests);

  // Phase 1: in-process packed baseline.
  InprocResult inproc = RunInprocess(w, workers, kBatch, seconds);
  std::printf("in-process packed: %9.1f req/s   p99 %7.0f us   %s\n",
              inproc.rps, inproc.p99_us,
              inproc.correct ? "bit-identical" : "WRONG RESULTS");

  // Phase 2: the same pipeline behind the HTTP front end, plus the same
  // executable as a continuous model — every 8th request exercises the
  // slot map, the step journal, and the splice/retire metrics over the
  // wire.
  const int kContinuousSlots = 4;
  const int kContinuousEvery = 8;
  HttpResult http;
  serve::StatsSnapshot snap_c;
  int64_t mem_peak_bytes = 0;
  int64_t mem_copied_bytes = 0;
  {
    serve::ServeConfig config;
    config.num_workers = workers;
    // A soft limit far above what this workload can reach: the pressure
    // plane polls, gauges, and exports for real without ever shedding
    // (scripts/check_metrics.sh asserts pressure == 0 after the run).
    config.memory.soft_limit_bytes = int64_t{1} << 30;
    serve::Server server(config);
    server.AddModel("m", MakeModelConfig(w, 256, kBatch));
    serve::ModelConfig continuous;
    continuous.exec = w.exec;
    continuous.queue_capacity = 256;
    continuous.batch.continuous = true;
    continuous.batch.continuous_slots = kContinuousSlots;
    server.AddModel("c", std::move(continuous));
    server.Start();
    net::HttpServer front(&server);
    front.Start();
    http = RunHttpClosedLoop(w, front.port(), clients, seconds, json_body,
                             kContinuousEvery);
    // Drain BEFORE scraping: the packed path records every completion
    // before its response leaves the worker, but the continuous runner
    // pushes a step's journal record (and its retire tallies) after the
    // completion callbacks, so the last response can beat the last record.
    // After Drain the runners have joined and every counter has settled,
    // making the client-tally cross-checks in scripts/check_metrics.sh
    // exact. The GET endpoints stay up — only admission is closed.
    server.Drain();
    if (write_json) {
      DumpEndpoint(front.port(), "/metrics", "METRICS.txt");
      DumpEndpoint(front.port(), "/debug/trace?n=64", "TRACE.json");
      DumpEndpoint(front.port(), "/debug/steps?model=c", "STEPS.json");
      DumpEndpoint(front.port(), "/debug/memory", "MEMORY.json");
    }
    front.Stop();
    auto snap = server.stats();
    snap_c = server.stats("c");
    for (const obs::AllocScopeSample& scope : server.MemoryScopes()) {
      mem_peak_bytes += scope.peak_bytes;
    }
    for (const obs::CopySiteSnapshot& site : obs::CopyLedgerSnapshot()) {
      mem_copied_bytes += site.bytes;
    }
    std::printf("http closed-loop:  %9.1f req/s   p50 %7.0f us   p99 %7.0f "
                "us\n",
                http.rps, http.p50_us, http.p99_us);
    std::printf(
        "                   server-side queue-wait mean %.0f us, exec mean "
        "%.0f us, %lld batches (mean size %.2f), padding waste %.1f%%\n",
        snap.mean_queue_wait_us, snap.mean_exec_us,
        static_cast<long long>(snap.batches), snap.mean_batch_size,
        snap.padding_waste * 100.0);
    std::printf(
        "continuous \"c\":   %lld of the 200s (every %dth request), %lld "
        "rows over %lld steps (%lld splices), mean step %.0f us, mean "
        "occupancy %.2f/%d\n",
        static_cast<long long>(http.ok200_c), kContinuousEvery,
        static_cast<long long>(http.rows_c),
        static_cast<long long>(snap_c.continuous_steps),
        static_cast<long long>(snap_c.splices),
        snap_c.mean_step_duration_us, snap_c.mean_slot_occupancy,
        kContinuousSlots);
  }
  double ratio = inproc.rps > 0.0 ? http.rps / inproc.rps : 0.0;
  bench::PrintRule();
  std::printf(
      "HTTP vs in-process: %.1f vs %.1f req/s (%.1f%% of the packed path), "
      "results %s\n",
      http.rps, inproc.rps, ratio * 100.0,
      (http.mismatched == 0 && http.transport_errors == 0 &&
       http.server_5xx == 0)
          ? "bit-identical, no errors"
          : "WRONG");

  // Phase 3: overload against a deliberately tiny pipeline. Offered load
  // (extra clients, zero think time) far exceeds queue capacity 4; every
  // excess request must surface as a 429, never a 5xx or a hang.
  bench::PrintHeader("overload: queue 4, 1 worker, 1 pending batch, " +
                     std::to_string(clients * 2) + " clients");
  HttpResult overload;
  {
    serve::ServeConfig config;
    config.num_workers = 1;
    config.max_pending_batches = 1;
    serve::Server server(config);
    server.AddModel("m", MakeModelConfig(w, 4, kBatch));
    server.Start();
    net::HttpServer front(&server);
    front.Start();
    overload = RunHttpClosedLoop(w, front.port(), clients * 2,
                                 std::min(seconds, 2.0), json_body);
    front.Stop();
    server.Drain();
  }
  std::printf(
      "200s %lld (%.1f req/s), 429s %lld (clients back off and retry), "
      "5xx %lld, transport errors %lld, mismatches %lld\n",
      static_cast<long long>(overload.ok200), overload.rps,
      static_cast<long long>(overload.shed429),
      static_cast<long long>(overload.server_5xx),
      static_cast<long long>(overload.transport_errors),
      static_cast<long long>(overload.mismatched));
  bool overload_clean = overload.server_5xx == 0 &&
                        overload.transport_errors == 0 &&
                        overload.mismatched == 0 && overload.shed429 > 0;
  std::printf("backpressure on the wire: %s\n",
              overload_clean ? "OK (shed as 429, zero 5xx/drops)"
                             : "FAILED");

  // Optional phase 4: what does always-on tracing cost?
  TraceOverheadResult overhead;
  if (trace_overhead) {
    bench::PrintHeader("telemetry overhead: alternating tracing+memory "
                       "ledgers on/off, best of 2 runs each");
    overhead = MeasureTraceOverhead(w, workers, kBatch, clients, seconds,
                                    json_body);
    std::printf(
        "telemetry on %.1f req/s, off %.1f req/s -> overhead %.2f%% "
        "(budget 3%%)\n",
        overhead.rps_on, overhead.rps_off, overhead.overhead_pct);
  }

  bool correct = inproc.correct && http.mismatched == 0 &&
                 http.transport_errors == 0 && http.server_5xx == 0;
  if (write_json) {
    FILE* f = std::fopen("BENCH_http.json", "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write BENCH_http.json\n");
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"requests\": %d,\n"
        "  \"clients\": %d,\n"
        "  \"workers\": %d,\n"
        "  \"body_format\": \"%s\",\n"
        "  \"correct\": %s,\n"
        "  \"inprocess_packed\": {\"rps\": %.1f, \"p99_us\": %.0f},\n"
        "  \"http\": {\"rps\": %.1f, \"p50_us\": %.0f, \"p99_us\": %.0f,\n"
        "           \"completed\": %lld, \"rejected_429\": %lld,\n"
        "           \"server_5xx\": %lld, \"transport_errors\": %lld},\n"
        "  \"http_vs_inprocess_ratio\": %.3f,\n"
        "  \"continuous\": {\"slots\": %d, \"every\": %d,\n"
        "                 \"completed\": %lld, \"rejected_429\": %lld,\n"
        "                 \"rows\": %lld, \"splices\": %lld, "
        "\"steps\": %lld},\n"
        "  \"overload\": {\"completed\": %lld, \"rejected_429\": %lld,\n"
        "               \"server_5xx\": %lld, \"transport_errors\": %lld,\n"
        "               \"clean\": %s},\n"
        "  \"memory\": {\"peak_bytes\": %lld, \"copied_bytes\": %lld}",
        requests, clients, workers, json_body ? "json" : "binary",
        correct ? "true" : "false", inproc.rps, inproc.p99_us, http.rps,
        http.p50_us, http.p99_us, static_cast<long long>(http.ok200),
        static_cast<long long>(http.shed429),
        static_cast<long long>(http.server_5xx),
        static_cast<long long>(http.transport_errors), ratio,
        kContinuousSlots, kContinuousEvery,
        static_cast<long long>(http.ok200_c),
        static_cast<long long>(http.shed429_c),
        static_cast<long long>(http.rows_c),
        static_cast<long long>(snap_c.splices),
        static_cast<long long>(snap_c.continuous_steps),
        static_cast<long long>(overload.ok200),
        static_cast<long long>(overload.shed429),
        static_cast<long long>(overload.server_5xx),
        static_cast<long long>(overload.transport_errors),
        overload_clean ? "true" : "false",
        static_cast<long long>(mem_peak_bytes),
        static_cast<long long>(mem_copied_bytes));
    if (trace_overhead) {
      std::fprintf(
          f,
          ",\n  \"trace_overhead\": {\"rps_on\": %.1f, \"rps_off\": %.1f,\n"
          "                     \"overhead_pct\": %.2f}",
          overhead.rps_on, overhead.rps_off, overhead.overhead_pct);
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_http.json\n");
  }
  return (correct && overload_clean) ? 0 : 1;
}
