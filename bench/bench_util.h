// Shared timing and table-printing helpers for the paper-reproduction
// benchmark binaries.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace nimble {
namespace bench {

/// Minimum wall-clock seconds per call of `fn` (after warm-up). Minimum —
/// not median — because the benchmark host is shared/virtualized and the
/// interesting quantity is the interference-free latency of each system.
inline double MeasureSeconds(const std::function<void()>& fn, int warmup = 1,
                             int iters = 5) {
  for (int i = 0; i < warmup; ++i) fn();
  double best = 0.0;
  for (int i = 0; i < iters; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    double t = std::chrono::duration<double>(t1 - t0).count();
    if (i == 0 || t < best) best = t;
  }
  return best;
}

/// Measures several systems round-robin: each round times every system
/// once, and each system keeps its best round. Comparing within rounds
/// makes ratios robust to slow drift in machine load.
inline std::vector<double> MeasureInterleaved(
    const std::vector<std::function<void()>>& systems, int rounds = 4) {
  std::vector<double> best(systems.size(), 0.0);
  for (const auto& fn : systems) fn();  // warm-up
  for (int r = 0; r < rounds; ++r) {
    for (size_t i = 0; i < systems.size(); ++i) {
      auto t0 = std::chrono::steady_clock::now();
      systems[i]();
      auto t1 = std::chrono::steady_clock::now();
      double t = std::chrono::duration<double>(t1 - t0).count();
      if (r == 0 || t < best[i]) best[i] = t;
    }
  }
  return best;
}

inline void PrintRule(int width = 72) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void PrintHeader(const std::string& title) {
  PrintRule();
  std::printf("%s\n", title.c_str());
  PrintRule();
}

}  // namespace bench
}  // namespace nimble
