// Table 4 reproduction: overhead of handling dynamism at runtime.
//
// Paper: BERT at fixed sequence length 128, TVM static runtime vs Nimble,
// with Nimble's latency split into kernel invocations vs all other
// instructions (shape functions, dynamic allocation, dispatch). Paper finds
// TVM 5-25% faster with a small absolute gap.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/static_runtime.h"
#include "src/core/compiler.h"
#include "src/models/bert.h"
#include "src/models/workloads.h"
#include "src/vm/vm.h"

using namespace nimble;  // NOLINT

int main() {
  bench::PrintHeader(
      "Table 4: BERT latency at static sequence length 128 — static graph\n"
      "runtime (TVM-style) vs Nimble VM, with kernel/other split");

  models::BERTConfig config;
  config.num_layers = 4;
  config.hidden = 256;
  config.num_heads = 4;
  config.ffn_hidden = 1024;
  config.vocab = 2000;
  auto model = models::BuildBERT(config);

  const int64_t kSeqLen = 128;
  support::Rng rng(9);
  auto ids = models::RandomTokenIds(kSeqLen, config.vocab, rng);

  baselines::StaticBERTRuntime static_rt(model, kSeqLen);
  ir::Module mod = model.module;
  auto compiled = core::Compile(mod);
  vm::VirtualMachine machine(compiled.executable);
  auto ids_tensor = runtime::MakeTensor(
      runtime::NDArray::FromVector(ids, {static_cast<int64_t>(ids.size())}));
  auto times = bench::MeasureInterleaved(
      {[&] { static_rt.Run(ids); },
       [&] { machine.Invoke("main", {ids_tensor}); }},
      /*rounds=*/5);
  double static_ms = times[0] * 1e3;
  double nimble_ms = times[1] * 1e3;

  // Profile the kernel/other split.
  machine.EnableProfiling(true);
  machine.mutable_profile().Reset();
  machine.Invoke("main", {ids_tensor});
  const vm::VMProfile& profile = machine.profile();
  double total_prof_ms = profile.total_nanos / 1e6;
  double kernel_frac =
      static_cast<double>(profile.kernel_nanos) / profile.total_nanos;
  double kernel_ms = nimble_ms * kernel_frac;
  double other_ms = nimble_ms - kernel_ms;

  std::printf("%-10s %14s %14s %14s %12s\n", "device", "static lat.",
              "Nimble lat.", "kernel lat.", "others");
  std::printf("%-10s %12.2fms %12.2fms %12.2fms %10.2fms\n", "host-cpu",
              static_ms, nimble_ms, kernel_ms, other_ms);
  bench::PrintRule();
  std::printf("static runtime is %.1f%% faster (paper: 5-25%%); "
              "non-kernel fraction %.1f%%\n",
              (nimble_ms - static_ms) / nimble_ms * 100.0,
              (1.0 - kernel_frac) * 100.0);
  std::printf("profiled: %lld instructions, shape functions %.3f ms "
              "(profiled total %.2f ms)\n",
              static_cast<long long>(profile.instructions),
              profile.shape_func_nanos / 1e6, total_prof_ms);
  return 0;
}
