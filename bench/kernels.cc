// Tiled/tuned/parallel dense kernel benchmark.
//
// Compares, per shape, the residue-dispatch path the serving layer used
// before cache blocking (MicroTile8F32, which drops to scalar rows past
// k=1024) against the cache-blocked kernel under the default config, the
// tuner-chosen config, and — when the machine offers more than one core —
// the kernel-pool-partitioned variant. All four produce bit-identical
// outputs (tests/test_kernels.cc); this binary only measures them.
//
//   bench_kernels            # table on stdout
//   bench_kernels --json     # also writes BENCH_kernels.json for CI guards
//
// CI reads BENCH_kernels.json and asserts (a) the best blocked variant wins
// by >= 1.5x on at least one large shape (K=N>=1024, M>=8 — the regime the
// old path served at scalar speed), and (b) the tuned config is no slower
// than the default on at least half the shapes.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/codegen/dispatch.h"
#include "src/codegen/parallel.h"
#include "src/codegen/tuner.h"
#include "src/runtime/ndarray.h"
#include "src/support/rng.h"

using namespace nimble;  // NOLINT

namespace {

struct ShapeResult {
  int64_t m, n, k;
  bool large;  // the guarded regime
  double dispatch_s, blocked_s, tuned_s, parallel_s;
  codegen::DenseConfig tuned_config;
};

ShapeResult RunShape(int64_t m, int64_t n, int64_t k, bool large,
                     codegen::KernelPool* pool) {
  support::Rng rng(7);
  runtime::NDArray x =
      runtime::NDArray::Empty({m, k}, runtime::DataType::Float32());
  runtime::NDArray w =
      runtime::NDArray::Empty({n, k}, runtime::DataType::Float32());
  runtime::NDArray out =
      runtime::NDArray::Empty({m, n}, runtime::DataType::Float32());
  x.FillUniform(rng);
  w.FillUniform(rng);

  codegen::DenseDispatchTable table(codegen::kTileRows);
  codegen::DenseConfig default_config;
  // Tuner pick for this exact shape (repeats kept low: the bench itself
  // re-measures the winner interleaved below).
  codegen::DenseConfig tuned =
      codegen::TuneDenseStatic(m, n, k, /*repeats=*/1).front().config;

  const float* xp = x.data<float>();
  const float* wp = w.data<float>();
  float* op = out.data<float>();
  std::vector<std::function<void()>> systems = {
      [&] { table.Run(xp, wp, op, m, n, k); },
      [&] { codegen::DenseBlocked(xp, wp, op, m, n, k, default_config); },
      [&] { codegen::DenseBlocked(xp, wp, op, m, n, k, tuned); },
      [&] { codegen::DenseBlockedParallel(xp, wp, op, m, n, k, tuned, pool); },
  };
  std::vector<double> best = bench::MeasureInterleaved(systems, /*rounds=*/4);
  return ShapeResult{m,       n,       k,       large,  best[0],
                     best[1], best[2], best[3], tuned};
}

}  // namespace

int main(int argc, char** argv) {
  bool write_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      write_json = true;
    } else {
      std::fprintf(stderr, "bench_kernels: unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }

  codegen::KernelPool* pool = codegen::KernelPool::Global();
  int threads = pool != nullptr ? pool->num_threads() : 1;

  bench::PrintHeader(
      "Tiled + tuned + parallel dense kernels vs the residue-dispatch path\n"
      "(dispatch = pre-blocking serving path; all variants bit-identical)");
  std::printf("kernel pool threads: %d\n\n", threads);
  std::printf("%-20s %11s %11s %11s %11s %12s %8s\n", "shape (MxNxK)",
              "dispatch", "blocked", "tuned", "parallel", "tuned cfg",
              "speedup");

  // Large shapes (K=N>=1024, M>=8) are the guarded regime: past k=1024 the
  // old tile kernel runs scalar rows, the blocked kernel stays vectorized.
  struct Shape {
    int64_t m, n, k;
    bool large;
  };
  const Shape shapes[] = {
      {8, 64, 64, false},     {8, 256, 256, false},  {1, 1024, 1024, false},
      {8, 1024, 1024, true},  {8, 1024, 2048, true}, {8, 2048, 2048, true},
      {16, 2048, 2048, true},
  };

  std::vector<ShapeResult> results;
  for (const Shape& s : shapes) {
    ShapeResult r = RunShape(s.m, s.n, s.k, s.large, pool);
    results.push_back(r);
    double best_blocked = std::min({r.blocked_s, r.tuned_s, r.parallel_s});
    std::printf("%4lldx%-5lldx%-8lld %9.3fms %9.3fms %9.3fms %9.3fms %12s %7.2fx\n",
                static_cast<long long>(r.m), static_cast<long long>(r.n),
                static_cast<long long>(r.k), r.dispatch_s * 1e3,
                r.blocked_s * 1e3, r.tuned_s * 1e3, r.parallel_s * 1e3,
                r.tuned_config.ToString().c_str(),
                r.dispatch_s / best_blocked);
  }

  double max_large_speedup = 0.0;
  int tuned_wins = 0;
  for (const ShapeResult& r : results) {
    double best_blocked = std::min({r.blocked_s, r.tuned_s, r.parallel_s});
    if (r.large) {
      max_large_speedup =
          std::max(max_large_speedup, r.dispatch_s / best_blocked);
    }
    if (r.tuned_s <= r.blocked_s) ++tuned_wins;
  }
  bench::PrintRule();
  std::printf(
      "best speedup on large shapes: %.2fx (target >= 1.5x); tuned config no\n"
      "slower than default on %d/%zu shapes (target >= half)\n",
      max_large_speedup, tuned_wins, results.size());

  if (write_json) {
    FILE* f = std::fopen("BENCH_kernels.json", "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write BENCH_kernels.json\n");
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"threads\": %d,\n  \"max_large_speedup\": %.3f,\n"
                 "  \"tuned_wins\": %d,\n  \"shapes\": [\n",
                 threads, max_large_speedup, tuned_wins);
    for (size_t i = 0; i < results.size(); ++i) {
      const ShapeResult& r = results[i];
      std::fprintf(
          f,
          "    {\"m\": %lld, \"n\": %lld, \"k\": %lld, \"large\": %s,\n"
          "     \"dispatch_ms\": %.4f, \"blocked_ms\": %.4f, "
          "\"tuned_ms\": %.4f, \"parallel_ms\": %.4f,\n"
          "     \"tuned_config\": \"%s\", \"speedup\": %.3f}%s\n",
          static_cast<long long>(r.m), static_cast<long long>(r.n),
          static_cast<long long>(r.k), r.large ? "true" : "false",
          r.dispatch_s * 1e3, r.blocked_s * 1e3, r.tuned_s * 1e3,
          r.parallel_s * 1e3, r.tuned_config.ToString().c_str(),
          r.dispatch_s / std::min({r.blocked_s, r.tuned_s, r.parallel_s}),
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_kernels.json\n");
  }
  return 0;
}
