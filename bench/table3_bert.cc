// Table 3 reproduction: BERT inference latency (µs/token) with variable
// MRPC-like sequence lengths.
//
// Paper rows: Nimble vs PyTorch / MXNet / TensorFlow. Here: Nimble's VM
// with symbolic-shape dispatch vs the eager define-by-run baseline vs the
// static-padding strategy (§2.1: pad every input to the maximum length so a
// static compiler can run it — wasting work proportional to the padding).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/eager.h"
#include "src/baselines/static_runtime.h"
#include "src/core/compiler.h"
#include "src/models/bert.h"
#include "src/models/workloads.h"
#include "src/vm/vm.h"

using namespace nimble;  // NOLINT

int main() {
  bench::PrintHeader(
      "Table 3: BERT inference latency (us/token), MRPC-like lengths\n"
      "scaled config: 4 layers, hidden 256, 4 heads (paper: BERT-base); "
      "host-CPU substrate");

  models::BERTConfig config;
  config.num_layers = 4;
  config.hidden = 256;
  config.num_heads = 4;
  config.ffn_hidden = 1024;
  config.vocab = 2000;
  auto model = models::BuildBERT(config);

  const int64_t kMaxLen = 64;
  support::Rng rng(55);
  auto lengths = models::SampleMRPCLengths(6, rng, kMaxLen);
  std::vector<std::vector<int64_t>> inputs;
  int64_t total_tokens = 0;
  for (int64_t len : lengths) {
    inputs.push_back(models::RandomTokenIds(len, config.vocab, rng));
    total_tokens += len;
  }

  ir::Module mod = model.module;
  auto compiled = core::Compile(mod);
  vm::VirtualMachine machine(compiled.executable);
  baselines::EagerContext ctx_cpp(2000), ctx_py(20000);
  baselines::StaticBERTRuntime padded(model, kMaxLen);
  // Round-robin so machine-load drift hits every system equally.
  auto times = bench::MeasureInterleaved(
      {[&] {
         for (const auto& ids : inputs) {
           machine.Invoke("main",
                          {runtime::MakeTensor(runtime::NDArray::FromVector(
                              ids, {static_cast<int64_t>(ids.size())}))});
         }
       },
       [&] {
         for (const auto& ids : inputs) {
           baselines::EagerBERT(model, ids, ctx_cpp);
         }
       },
       [&] {
         for (const auto& ids : inputs) {
           baselines::EagerBERT(model, ids, ctx_py);
         }
       },
       [&] {
         for (const auto& ids : inputs) {
           std::vector<int64_t> p = ids;
           p.resize(kMaxLen, 0);
           padded.Run(p);
         }
       }});
  double scale = 1e6 / static_cast<double>(total_tokens);
  double nimble = times[0] * scale;
  double eager_cpp = times[1] * scale;
  double eager_py = times[2] * scale;
  double pad = times[3] * scale;

  std::printf("%-36s %12s\n", "system", "us/token");
  std::printf("%-36s %12.1f\n", "Nimble (VM, symbolic dispatch)", nimble);
  std::printf("%-36s %12.1f\n", "Eager (C++ dispatch, 2us/op)", eager_cpp);
  std::printf("%-36s %12.1f\n", "Eager (Python-driven, 20us/op)", eager_py);
  std::printf("%-36s %12.1f\n", "Static compiler + padding to 64", pad);
  bench::PrintRule();
  std::printf("speedup vs eager-C++: %.2fx, vs eager-Python: %.2fx (paper: "
              "1.05x-4.1x); vs padding: %.2fx\n",
              eager_cpp / nimble, eager_py / nimble, pad / nimble);
  return 0;
}
