// Figure 3 reproduction: relative latency of symbolic codegen vs static
// codegen for the three BERT-base dense operators, varying the number of
// residue-specialized kernels dispatched at runtime (§4.5).
//
// Rows: static / dispatch-8 / dispatch-4 / dispatch-2 / no-dispatch.
// Expected shape (paper): full dispatch ≈ static; latency grows as the
// kernel count shrinks, up to ~+42%/+104%/+45% at no-dispatch.
//
// Dispatch state: this benchmark constructs private DenseDispatchTable
// instances per configuration — the ownership pattern every dispatch user
// follows; there is no process-global dispatch table (see
// src/codegen/dispatch.h).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/codegen/dense_kernels.h"
#include "src/codegen/dispatch.h"
#include "src/support/rng.h"

using namespace nimble;  // NOLINT
using codegen::DenseDispatchTable;
using codegen::kTileRows;

namespace {

struct DenseShape {
  const char* name;
  int64_t n, k;
};

// The three dense layers of a BERT-base block: QKV/attention-output
// projection, FFN expand, FFN reduce.
const DenseShape kShapes[] = {
    {"Dense1 (768x768)", 768, 768},
    {"Dense2 (3072x768)", 3072, 768},
    {"Dense3 (768x3072)", 768, 3072},
};

// Dynamic sequence lengths covering every residue class modulo 8.
const int64_t kSeqLens[] = {57, 58, 59, 60, 61, 62, 63, 64};

/// "Static codegen": one kernel per concrete shape with every extent a
/// compile-time constant (template instantiations).
template <int64_t N, int64_t K>
void RunStatic(const std::vector<float>& x, const std::vector<float>& w,
               std::vector<float>& out) {
  codegen::DenseStatic<57, N, K>(x.data(), w.data(), out.data());
  codegen::DenseStatic<58, N, K>(x.data(), w.data(), out.data());
  codegen::DenseStatic<59, N, K>(x.data(), w.data(), out.data());
  codegen::DenseStatic<60, N, K>(x.data(), w.data(), out.data());
  codegen::DenseStatic<61, N, K>(x.data(), w.data(), out.data());
  codegen::DenseStatic<62, N, K>(x.data(), w.data(), out.data());
  codegen::DenseStatic<63, N, K>(x.data(), w.data(), out.data());
  codegen::DenseStatic<64, N, K>(x.data(), w.data(), out.data());
}

/// Measures static + every dispatch config round-robin (machine-load drift
/// hits each configuration equally; each keeps its best round).
template <int64_t N, int64_t K>
std::vector<double> MeasureAllConfigs(const std::vector<float>& x,
                                      const std::vector<float>& w,
                                      std::vector<float>& out) {
  DenseDispatchTable t8(8), t4(4), t2(2), t1(1);
  auto run_table = [&](const DenseDispatchTable& table) {
    for (int64_t m : kSeqLens) {
      table.Run(x.data(), w.data(), out.data(), m, N, K);
    }
  };
  return bench::MeasureInterleaved({[&] { RunStatic<N, K>(x, w, out); },
                                    [&] { run_table(t8); },
                                    [&] { run_table(t4); },
                                    [&] { run_table(t2); },
                                    [&] { run_table(t1); }},
                                   /*rounds=*/3);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 3: symbolic vs static codegen, relative latency (%) of three\n"
      "dense operators; dispatch/k = k residue-specialized kernels");

  std::printf("%-22s %10s %12s %12s %12s %12s\n", "operator", "static",
              "dispatch/8", "dispatch/4", "dispatch/2", "no dispatch");

  support::Rng rng(2024);
  for (size_t s = 0; s < 3; ++s) {
    const DenseShape& shape = kShapes[s];
    int64_t max_m = 64;
    std::vector<float> x(max_m * shape.k), w(shape.n * shape.k),
        out(max_m * shape.n);
    for (auto& v : x) v = static_cast<float>(rng.Uniform(-1, 1));
    for (auto& v : w) v = static_cast<float>(rng.Uniform(-1, 1));

    std::vector<double> t;
    if (s == 0) {
      t = MeasureAllConfigs<768, 768>(x, w, out);
    } else if (s == 1) {
      t = MeasureAllConfigs<3072, 768>(x, w, out);
    } else {
      t = MeasureAllConfigs<768, 3072>(x, w, out);
    }
    std::printf("%-22s %9.0f%% %11.0f%% %11.0f%% %11.0f%% %11.0f%%\n",
                shape.name, 100.0, t[1] / t[0] * 100.0, t[2] / t[0] * 100.0,
                t[3] / t[0] * 100.0, t[4] / t[0] * 100.0);
  }
  bench::PrintRule();
  std::printf("paper: dispatch/8 ~= static; no-dispatch +42%%/+104%%/+45%%\n");
  return 0;
}
