// §4.5 tuning-mechanism ablation: does a configuration tuned at one static
// shape transfer to other shapes of the symbolic dimension?
//
// Runs the paper's three-step mechanism (tune at M=64, cross-evaluate the
// top-k configs on powers of two, pick the best average) and compares the
// chosen configuration against the per-shape oracle.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/codegen/tuner.h"

using namespace nimble;  // NOLINT

int main() {
  bench::PrintHeader(
      "Tuning ablation (section 4.5): config transfer across shapes\n"
      "dense op N=512 K=512, symbolic M");

  const int64_t N = 512, K = 512;
  auto result = codegen::TuneDenseSymbolic(N, K, /*top_k=*/4, /*tuning_m=*/64,
                                           /*max_eval_m=*/128);
  std::printf("chosen config: %s (avg %.3f ms over eval shapes)\n",
              result.chosen.ToString().c_str(),
              result.chosen_avg_seconds * 1e3);
  std::printf("top of the M=64 ranking:\n");
  for (size_t i = 0; i < 4 && i < result.tuning_shape_ranking.size(); ++i) {
    std::printf("  #%zu %s: %.3f ms\n", i + 1,
                result.tuning_shape_ranking[i].config.ToString().c_str(),
                result.tuning_shape_ranking[i].seconds * 1e3);
  }

  std::printf("\n%-8s %14s %14s %10s\n", "M", "transferred", "oracle",
              "penalty");
  double worst_penalty = 0.0;
  for (int64_t m : result.eval_shapes) {
    double transferred = codegen::MeasureDenseConfig(result.chosen, m, N, K, 3);
    auto oracle = codegen::TuneDenseStatic(m, N, K, 2);
    double best = oracle.front().seconds;
    double penalty = transferred / best;
    worst_penalty = std::max(worst_penalty, penalty);
    std::printf("%-8lld %12.3fms %12.3fms %9.2fx\n", static_cast<long long>(m),
                transferred * 1e3, best * 1e3, penalty);
  }
  bench::PrintRule();
  std::printf("worst transfer penalty %.2fx — the paper's premise is that a\n"
              "good config for one shape performs well on others (k=100\n"
              "covers most best configs; we use a reduced space)\n",
              worst_penalty);
  return 0;
}
