// Fusion ablation (§6.2 attributes part of Nimble's BERT advantage to
// "powerful operator fusion brought by the deep learning compiler"):
// compile LSTM and BERT with the fusion passes disabled and compare.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/compiler.h"
#include "src/models/bert.h"
#include "src/models/lstm.h"
#include "src/models/workloads.h"
#include "src/vm/vm.h"

using namespace nimble;  // NOLINT

namespace {

double RunLSTM(const models::LSTMModel& model, bool fuse, int64_t len) {
  ir::Module mod = model.module;
  core::CompileOptions opts;
  opts.fuse_ops = fuse;
  opts.fuse_lstm_cell = fuse;
  auto compiled = core::Compile(mod, opts);
  vm::VirtualMachine machine(compiled.executable);
  support::Rng rng(1);
  auto x = runtime::MakeTensor(
      models::RandomSequence(len, model.config.input_size, rng));
  auto n = runtime::MakeTensor(runtime::NDArray::Scalar<int64_t>(len));
  return bench::MeasureSeconds([&] { machine.Invoke("main", {x, n}); }) * 1e3;
}

double RunBERT(const models::BERTModel& model, bool fuse, int64_t len) {
  ir::Module mod = model.module;
  core::CompileOptions opts;
  opts.fuse_ops = fuse;
  auto compiled = core::Compile(mod, opts);
  vm::VirtualMachine machine(compiled.executable);
  support::Rng rng(2);
  auto ids = runtime::MakeTensor(runtime::NDArray::FromVector(
      models::RandomTokenIds(len, model.config.vocab, rng), {len}));
  return bench::MeasureSeconds([&] { machine.Invoke("main", {ids}); }) * 1e3;
}

}  // namespace

int main() {
  bench::PrintHeader("Fusion ablation: latency (ms) with fusion on/off");

  models::LSTMConfig lstm_config;
  lstm_config.input_size = 300;
  lstm_config.hidden_size = 512;
  auto lstm = models::BuildLSTM(lstm_config);
  double lstm_on = RunLSTM(lstm, true, 32);
  double lstm_off = RunLSTM(lstm, false, 32);

  models::BERTConfig bert_config;
  bert_config.num_layers = 2;
  bert_config.hidden = 256;
  bert_config.num_heads = 4;
  bert_config.ffn_hidden = 1024;
  bert_config.vocab = 2000;
  auto bert = models::BuildBERT(bert_config);
  double bert_on = RunBERT(bert, true, 48);
  double bert_off = RunBERT(bert, false, 48);

  std::printf("%-22s %12s %12s %10s\n", "model", "fused", "unfused", "gain");
  std::printf("%-22s %10.2fms %10.2fms %9.2fx\n", "LSTM (len 32)", lstm_on,
              lstm_off, lstm_off / lstm_on);
  std::printf("%-22s %10.2fms %10.2fms %9.2fx\n", "BERT (len 48)", bert_on,
              bert_off, bert_off / bert_on);
  return 0;
}
