// Multi-model serving demo (docs/ARCHITECTURE.md): one Server hosting an
// LSTM and a BERT concurrently.
//
// Each model gets its own admission queue, batch policy, and stats; the two
// share one VM pool whose workers rebind to the executable of each batch
// they pull. Deficit-round-robin scheduling keeps the cheap LSTM traffic
// flowing even while the heavier BERT requests occupy workers.
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "src/core/compiler.h"
#include "src/models/bert.h"
#include "src/models/lstm.h"
#include "src/models/workloads.h"
#include "src/serve/server.h"

using namespace nimble;  // NOLINT

int main() {
  // 1. Compile both models. Each executable owns its dispatch table, so the
  //    second Compile cannot perturb the first model (they could even be
  //    compiled while the server is already running).
  models::LSTMConfig lstm_config;
  lstm_config.input_size = 32;
  lstm_config.hidden_size = 64;
  auto lstm = models::BuildLSTM(lstm_config);
  auto lstm_exec = core::Compile(lstm.module).executable;

  models::BERTConfig bert_config;
  bert_config.num_layers = 2;
  bert_config.hidden = 64;
  bert_config.num_heads = 4;
  bert_config.ffn_hidden = 128;
  bert_config.vocab = 1000;
  auto bert = models::BuildBERT(bert_config);
  auto bert_exec = core::Compile(bert.module).executable;

  std::printf("compiled lstm (%zu instructions) and bert (%zu instructions)\n",
              lstm_exec->NumInstructions(), bert_exec->NumInstructions());

  // 2. One server, two registered models, one shared 4-worker pool.
  serve::ServeConfig config;
  config.num_workers = 4;
  serve::Server server(config);

  serve::ModelConfig lstm_model;
  lstm_model.exec = lstm_exec;
  lstm_model.queue_capacity = 64;
  lstm_model.batch.max_batch_size = 4;
  lstm_model.batch.max_wait_micros = 1000;
  server.AddModel("lstm", std::move(lstm_model));

  serve::ModelConfig bert_model;
  bert_model.exec = bert_exec;
  bert_model.queue_capacity = 64;
  bert_model.batch.max_batch_size = 4;
  bert_model.batch.max_wait_micros = 2000;
  bert_model.weight = 1;  // equal DRR share with the LSTM
  server.AddModel("bert", std::move(bert_model));

  server.Start();

  // 3. Two client threads, one per model, submitting variable-length
  //    bursts concurrently.
  const int kRequestsPerModel = 32;
  std::vector<std::future<runtime::ObjectRef>> lstm_futures(kRequestsPerModel);
  std::vector<std::future<runtime::ObjectRef>> bert_futures(kRequestsPerModel);

  std::thread lstm_client([&] {
    support::Rng rng(99);
    auto lengths = models::SampleMRPCLengths(kRequestsPerModel, rng, 96);
    for (int i = 0; i < kRequestsPerModel; ++i) {
      runtime::NDArray x =
          models::RandomSequence(lengths[i], lstm_config.input_size, rng);
      lstm_futures[i] = server.Submit(
          "lstm",
          {runtime::MakeTensor(x),
           runtime::MakeTensor(runtime::NDArray::Scalar<int64_t>(lengths[i]))},
          lengths[i]);
    }
  });
  std::thread bert_client([&] {
    support::Rng rng(7);
    auto lengths = models::SampleMRPCLengths(kRequestsPerModel, rng, 64);
    for (int i = 0; i < kRequestsPerModel; ++i) {
      auto ids = models::RandomTokenIds(lengths[i], bert_config.vocab, rng);
      bert_futures[i] = server.Submit(
          "bert",
          {runtime::MakeTensor(
              runtime::NDArray::FromVector(ids, {lengths[i]}))},
          lengths[i]);
    }
  });
  lstm_client.join();
  bert_client.join();

  for (auto& f : lstm_futures) f.get();
  for (auto& f : bert_futures) f.get();
  std::printf("served %d requests per model\n\n", kRequestsPerModel);

  server.Shutdown();

  // 4. Per-model latency percentiles plus the pool-wide aggregate.
  for (const std::string& name : server.model_names()) {
    auto snap = server.stats(name);
    std::printf("%-5s: %lld ok, %.1f req/s, p50 %.0f us, p95 %.0f us\n",
                name.c_str(), static_cast<long long>(snap.completed),
                snap.throughput_rps, snap.p50_latency_us, snap.p95_latency_us);
  }
  auto total = server.stats();
  std::printf("total: %lld ok, %.1f req/s\n",
              static_cast<long long>(total.completed), total.throughput_rps);
  return 0;
}
