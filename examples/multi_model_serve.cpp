// Multi-model serving demo (docs/ARCHITECTURE.md): one Server hosting an
// LSTM and a BERT concurrently.
//
// Each model gets its own admission queue, batch policy, and stats; the two
// share one VM pool whose workers rebind to the executable of each batch
// they pull. Deficit-round-robin scheduling keeps the cheap LSTM traffic
// flowing even while the heavier BERT requests occupy workers.
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "src/core/compiler.h"
#include "src/models/bert.h"
#include "src/models/lstm.h"
#include "src/models/workloads.h"
#include "src/serve/server.h"

using namespace nimble;  // NOLINT

int main() {
  // 1. Compile both models. Each executable owns its dispatch table, so the
  //    second Compile cannot perturb the first model (they could even be
  //    compiled while the server is already running).
  models::LSTMConfig lstm_config;
  lstm_config.input_size = 32;
  lstm_config.hidden_size = 64;
  lstm_config.emit_batched = true;  // emit @main_batched for packed batches
  auto lstm = models::BuildLSTM(lstm_config);
  core::CompileOptions lstm_opts;
  lstm_opts.batched_entries = {lstm.batched_spec};
  auto lstm_exec = core::Compile(lstm.module, lstm_opts).executable;

  models::BERTConfig bert_config;
  bert_config.num_layers = 2;
  bert_config.hidden = 64;
  bert_config.num_heads = 4;
  bert_config.ffn_hidden = 128;
  bert_config.vocab = 1000;
  auto bert = models::BuildBERT(bert_config);
  auto bert_exec = core::Compile(bert.module).executable;

  std::printf("compiled lstm (%zu instructions) and bert (%zu instructions)\n",
              lstm_exec->NumInstructions(), bert_exec->NumInstructions());

  // 2. One server, two registered models, one shared 4-worker pool.
  serve::ServeConfig config;
  config.num_workers = 4;
  serve::Server server(config);

  serve::ModelConfig lstm_model;
  lstm_model.exec = lstm_exec;
  lstm_model.queue_capacity = 64;
  lstm_model.batch.max_batch_size = 4;
  lstm_model.batch.max_wait_micros = 1000;
  // Tensor batching per model: LSTM batches run packed; BERT (no batched
  // entry) keeps the per-request loop — the same flag would simply fall
  // back, but leaving it off documents the intent.
  lstm_model.batch.tensor_batching = true;
  server.AddModel("lstm", std::move(lstm_model));

  serve::ModelConfig bert_model;
  bert_model.exec = bert_exec;
  bert_model.queue_capacity = 64;
  bert_model.batch.max_batch_size = 4;
  bert_model.batch.max_wait_micros = 2000;
  bert_model.weight = 1;  // equal DRR share with the LSTM
  server.AddModel("bert", std::move(bert_model));

  server.Start();

  // 3. Two client threads, one per model, submitting variable-length
  //    bursts concurrently.
  const int kRequestsPerModel = 32;
  std::vector<std::future<runtime::ObjectRef>> lstm_futures(kRequestsPerModel);
  std::vector<std::future<runtime::ObjectRef>> bert_futures(kRequestsPerModel);

  std::thread lstm_client([&] {
    support::Rng rng(99);
    auto lengths = models::SampleMRPCLengths(kRequestsPerModel, rng, 96);
    for (int i = 0; i < kRequestsPerModel; ++i) {
      runtime::NDArray x =
          models::RandomSequence(lengths[i], lstm_config.input_size, rng);
      lstm_futures[i] = server.Submit(
          "lstm",
          {runtime::MakeTensor(x),
           runtime::MakeTensor(runtime::NDArray::Scalar<int64_t>(lengths[i]))},
          lengths[i]);
    }
  });
  std::thread bert_client([&] {
    support::Rng rng(7);
    auto lengths = models::SampleMRPCLengths(kRequestsPerModel, rng, 64);
    for (int i = 0; i < kRequestsPerModel; ++i) {
      auto ids = models::RandomTokenIds(lengths[i], bert_config.vocab, rng);
      bert_futures[i] = server.Submit(
          "bert",
          {runtime::MakeTensor(
              runtime::NDArray::FromVector(ids, {lengths[i]}))},
          lengths[i]);
    }
  });
  lstm_client.join();
  bert_client.join();

  for (auto& f : lstm_futures) f.get();
  for (auto& f : bert_futures) f.get();
  std::printf("served %d requests per model\n\n", kRequestsPerModel);

  server.Shutdown();

  // 4. Per-model latency percentiles plus the pool-wide aggregate. The
  //    batch-size histogram and padding-waste counters show how each
  //    model's batches actually executed: the LSTM's run packed (with the
  //    padding that costs), BERT's fall back to the per-request loop.
  for (const std::string& name : server.model_names()) {
    auto snap = server.stats(name);
    std::printf("%-5s: %lld ok, %.1f req/s, p50 %.0f us, p95 %.0f us, "
                "packed %lld/%lld batches, padding waste %.1f%%\n",
                name.c_str(), static_cast<long long>(snap.completed),
                snap.throughput_rps, snap.p50_latency_us, snap.p95_latency_us,
                static_cast<long long>(snap.packed_batches),
                static_cast<long long>(snap.batches),
                snap.padding_waste * 100.0);
    std::printf("       batch sizes:");
    for (size_t i = 0; i < snap.batch_size_hist.size(); ++i) {
      if (snap.batch_size_hist[i] == 0) continue;
      std::printf("  [%s]=%lld", serve::ServeStats::BatchHistLabel(i),
                  static_cast<long long>(snap.batch_size_hist[i]));
    }
    std::printf("\n");
  }
  auto total = server.stats();
  std::printf("total: %lld ok, %.1f req/s\n",
              static_cast<long long>(total.completed), total.throughput_rps);
  return 0;
}
