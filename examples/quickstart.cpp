// Quickstart: compile and run a tiny dynamic program.
//
// Builds the paper's §4.3 running example — concatenating a
// dynamically-sized tensor with a static one — walks it through the full
// pipeline, prints the bytecode, and executes it on the VM with inputs of
// different sizes.
//
//   fn (%x: Tensor[(?, 2)], %y: Tensor[(1, 2)]) { concat(%x, %y) }
#include <cstdio>
#include <iostream>

#include "src/core/compiler.h"
#include "src/ir/printer.h"
#include "src/op/registry.h"
#include "src/vm/vm.h"

using namespace nimble;  // NOLINT

int main() {
  // 1. Build the IR: a function over a tensor with an Any (dynamic) rows dim.
  ir::Var x = ir::MakeVar(
      "x", ir::TensorType({ir::Dim::Any(), ir::Dim::Static(2)}));
  ir::Var y = ir::MakeVar("y", ir::TensorType({1, 2}));
  ir::Expr body =
      op::Call2("concat", x, y, ir::Attrs().Set("axis", 0));
  ir::Module mod;
  mod.Add("main", ir::MakeFunction({x, y}, body));

  std::printf("== source IR ==\n%s\n", mod.ToString().c_str());

  // 2. Compile: type inference with Any, fusion, explicit allocation,
  //    device placement, memory planning, bytecode generation.
  core::CompileResult compiled = core::Compile(mod);
  std::printf("== bytecode ==\n%s\n", compiled.executable->Disassemble().c_str());

  // 3. Execute with different dynamic sizes — one executable handles all.
  vm::VirtualMachine machine(compiled.executable);
  for (int64_t rows : {1, 3, 5}) {
    runtime::NDArray xv =
        runtime::NDArray::Empty({rows, 2}, runtime::DataType::Float32());
    xv.Fill(static_cast<double>(rows));
    runtime::NDArray yv =
        runtime::NDArray::Empty({1, 2}, runtime::DataType::Float32());
    yv.Fill(-1.0);
    auto out = machine.Invoke(
        "main", {runtime::MakeTensor(xv), runtime::MakeTensor(yv)});
    std::printf("rows=%lld -> %s\n", static_cast<long long>(rows),
                runtime::ObjectToString(out, 12).c_str());
  }
  return 0;
}
