// Serving demo: compile the LSTM once, then serve a burst of
// variable-length requests through the concurrent pipeline
//
//   Submit -> RequestQueue -> BatchScheduler -> VMPool -> future
//
// and print the stats the server collected (throughput, latency
// percentiles, batch occupancy).
#include <cstdio>
#include <future>
#include <vector>

#include "src/core/compiler.h"
#include "src/models/lstm.h"
#include "src/models/workloads.h"
#include "src/serve/server.h"

using namespace nimble;  // NOLINT

int main() {
  // 1. Build and compile the model once. The executable is immutable and
  //    shared by every pool worker.
  models::LSTMConfig config;
  config.input_size = 32;
  config.hidden_size = 64;
  // Emit and ship the @main_batched calling convention with the executable
  // so the server can run whole buckets as single packed invocations.
  config.emit_batched = true;
  auto model = models::BuildLSTM(config);
  core::CompileOptions compile_opts;
  compile_opts.batched_entries = {model.batched_spec};
  core::CompileResult compiled = core::Compile(model.module, compile_opts);
  std::printf("compiled LSTM: %zu bytecode instructions\n",
              compiled.executable->NumInstructions());

  // 2. Stand up the server: 4 VM workers, bounded queue, length-bucketed
  //    batching tuned for the MRPC-like length distribution, and tensor
  //    batching on — each dispatched bucket runs as ONE padded [Lmax, B, D]
  //    invocation (src/batch/) with results bit-identical to per-request
  //    execution.
  serve::ServeConfig serve_config;
  serve_config.num_workers = 4;
  serve_config.queue_capacity = 32;
  serve_config.batch.max_batch_size = 4;
  serve_config.batch.max_wait_micros = 1000;
  serve_config.batch.tensor_batching = true;
  serve::Server server(compiled.executable, serve_config);

  // 3. Submit a burst of variable-length requests and collect the futures.
  support::Rng rng(99);
  const int kRequests = 40;
  auto lengths = models::SampleMRPCLengths(kRequests, rng, 96);
  std::vector<std::future<runtime::ObjectRef>> futures;
  for (int64_t len : lengths) {
    runtime::NDArray x = models::RandomSequence(len, config.input_size, rng);
    futures.push_back(server.Submit(
        {runtime::MakeTensor(x),
         runtime::MakeTensor(runtime::NDArray::Scalar<int64_t>(len))},
        len));
  }

  // 4. Wait for every result; each future holds the final hidden state.
  for (size_t i = 0; i < futures.size(); ++i) {
    runtime::ObjectRef out = futures[i].get();  // keep the result object alive
    const runtime::NDArray& h = runtime::AsTensor(out);
    if (i < 3) {
      std::printf("request %zu (len %lld) -> hidden %s\n", i,
                  static_cast<long long>(lengths[i]),
                  runtime::ShapeToString(h.shape()).c_str());
    }
  }
  std::printf("... %d requests served\n", kRequests);

  server.Shutdown();
  auto snap = server.stats();
  std::printf("stats: %s\n", snap.ToString().c_str());

  // 5. Batching effectiveness: how full the dispatched batches were, how
  //    many ran packed, and how much of the packed input was padding.
  std::printf("batch-size histogram:");
  for (size_t i = 0; i < snap.batch_size_hist.size(); ++i) {
    if (snap.batch_size_hist[i] == 0) continue;
    std::printf("  [%s]=%lld", serve::ServeStats::BatchHistLabel(i),
                static_cast<long long>(snap.batch_size_hist[i]));
  }
  std::printf("\npacked batches: %lld/%lld, padding waste %.1f%% (%lld of "
              "%lld packed elements)\n",
              static_cast<long long>(snap.packed_batches),
              static_cast<long long>(snap.batches),
              snap.padding_waste * 100.0,
              static_cast<long long>(snap.padded_elements),
              static_cast<long long>(snap.packed_total_elements));
  return 0;
}
