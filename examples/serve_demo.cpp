// Serving demo: compile the LSTM once, then serve a burst of
// variable-length requests through the concurrent pipeline
//
//   Submit -> RequestQueue -> BatchScheduler -> VMPool -> future
//
// and print the stats the server collected (throughput, latency
// percentiles, batch occupancy).
#include <cstdio>
#include <future>
#include <vector>

#include "src/core/compiler.h"
#include "src/models/lstm.h"
#include "src/models/workloads.h"
#include "src/serve/server.h"

using namespace nimble;  // NOLINT

int main() {
  // 1. Build and compile the model once. The executable is immutable and
  //    shared by every pool worker.
  models::LSTMConfig config;
  config.input_size = 32;
  config.hidden_size = 64;
  auto model = models::BuildLSTM(config);
  core::CompileResult compiled = core::Compile(model.module);
  std::printf("compiled LSTM: %zu bytecode instructions\n",
              compiled.executable->NumInstructions());

  // 2. Stand up the server: 4 VM workers, bounded queue, length-bucketed
  //    batching tuned for the MRPC-like length distribution.
  serve::ServeConfig serve_config;
  serve_config.num_workers = 4;
  serve_config.queue_capacity = 32;
  serve_config.batch.max_batch_size = 4;
  serve_config.batch.max_wait_micros = 1000;
  serve::Server server(compiled.executable, serve_config);

  // 3. Submit a burst of variable-length requests and collect the futures.
  support::Rng rng(99);
  const int kRequests = 40;
  auto lengths = models::SampleMRPCLengths(kRequests, rng, 96);
  std::vector<std::future<runtime::ObjectRef>> futures;
  for (int64_t len : lengths) {
    runtime::NDArray x = models::RandomSequence(len, config.input_size, rng);
    futures.push_back(server.Submit(
        {runtime::MakeTensor(x),
         runtime::MakeTensor(runtime::NDArray::Scalar<int64_t>(len))},
        len));
  }

  // 4. Wait for every result; each future holds the final hidden state.
  for (size_t i = 0; i < futures.size(); ++i) {
    runtime::ObjectRef out = futures[i].get();  // keep the result object alive
    const runtime::NDArray& h = runtime::AsTensor(out);
    if (i < 3) {
      std::printf("request %zu (len %lld) -> hidden %s\n", i,
                  static_cast<long long>(lengths[i]),
                  runtime::ShapeToString(h.shape()).c_str());
    }
  }
  std::printf("... %d requests served\n", kRequests);

  server.Shutdown();
  std::printf("stats: %s\n", server.stats().ToString().c_str());
  return 0;
}
