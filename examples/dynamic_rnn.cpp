// Dynamic RNN example: an LSTM over variable-length sequences (the paper's
// control-flow dynamism, §2). One compiled executable serves every sequence
// length; the loop is bytecode (If/Goto/Invoke), not host-language control
// flow.
#include <cstdio>

#include "src/core/compiler.h"
#include "src/models/lstm.h"
#include "src/models/workloads.h"
#include "src/vm/vm.h"

using namespace nimble;  // NOLINT

int main() {
  models::LSTMConfig config;
  config.input_size = 64;
  config.hidden_size = 128;
  config.num_layers = 2;
  auto model = models::BuildLSTM(config);

  core::CompileResult compiled = core::Compile(model.module);
  std::printf("compiled 2-layer LSTM: %zu bytecode instructions, "
              "%d LSTM cells fused, %d fusion groups\n",
              compiled.executable->NumInstructions(),
              compiled.lstm_cells_fused, compiled.fusion.groups_created);

  vm::VirtualMachine machine(compiled.executable);
  support::Rng rng(17);
  for (int64_t len : {3, 10, 25, 60}) {
    runtime::NDArray x = models::RandomSequence(len, config.input_size, rng);
    auto out = machine.Invoke(
        "main", {runtime::MakeTensor(x),
                 runtime::MakeTensor(runtime::NDArray::Scalar<int64_t>(len))});
    const auto& h = runtime::AsTensor(out);
    std::printf("len=%3lld -> final hidden state %s\n",
                static_cast<long long>(len), h.ToString(4).c_str());
  }
  return 0;
}
