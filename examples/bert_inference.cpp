// BERT example: variable-sequence-length inference (the paper's
// dynamic-shape workload). Shows the symbolic-shape machinery end to end:
// one executable, runtime shape functions sizing every allocation, and the
// executable's own dense dispatch table routing each sequence length to a
// residue-specialized kernel (§4.5).
#include <cstdio>

#include "src/codegen/dispatch.h"
#include "src/core/compiler.h"
#include "src/models/bert.h"
#include "src/models/workloads.h"
#include "src/vm/vm.h"

using namespace nimble;  // NOLINT

int main() {
  models::BERTConfig config;
  config.num_layers = 2;
  config.hidden = 128;
  config.num_heads = 4;
  config.ffn_hidden = 512;
  config.vocab = 1000;
  auto model = models::BuildBERT(config);

  core::CompileResult compiled = core::Compile(model.module);
  std::printf("compiled BERT: %zu instructions, %d fusion groups\n",
              compiled.executable->NumInstructions(),
              compiled.fusion.groups_created);

  vm::VirtualMachine machine(compiled.executable);
  machine.EnableProfiling(true);
  // Dispatch state is owned by the executable (not a process global), so
  // these counters see exactly this model's traffic.
  auto& dispatch = compiled.executable->dispatch_table;
  dispatch.stats().Reset();

  support::Rng rng(41);
  for (int64_t len : {7, 16, 33, 50}) {
    auto ids = models::RandomTokenIds(len, config.vocab, rng);
    auto out = machine.Invoke(
        "main", {runtime::MakeTensor(runtime::NDArray::FromVector(ids, {len}))});
    std::printf("len=%3lld -> output %s\n", static_cast<long long>(len),
                runtime::AsTensor(out).ToString(3).c_str());
  }

  const auto& stats = dispatch.stats();
  std::printf("\ndense dispatch: %lld specialized calls, %lld fallbacks\n",
              static_cast<long long>(stats.specialized_calls),
              static_cast<long long>(stats.fallback_calls));
  std::printf("per-residue call counts:");
  for (int r = 0; r < codegen::kTileRows; ++r) {
    std::printf(" r%d=%lld", r, static_cast<long long>(stats.per_residue[r]));
  }
  std::printf("\n\n%s", machine.profile().ToString().c_str());
  return 0;
}
