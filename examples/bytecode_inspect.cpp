// Executable inspection example: compile a model, serialize the executable
// to disk, reload it, disassemble the platform-independent bytecode, and
// verify the reloaded copy produces identical results — the deployment
// story of §5 (compile once, ship bytecode + kernels anywhere).
#include <cstdio>

#include "src/core/compiler.h"
#include "src/models/tree_lstm.h"
#include "src/vm/vm.h"

using namespace nimble;  // NOLINT

int main() {
  models::TreeLSTMConfig config;
  config.input_size = 8;
  config.hidden_size = 12;
  auto model = models::BuildTreeLSTM(config);
  core::CompileResult compiled = core::Compile(model.module);

  const char* path = "/tmp/nimble_treelstm.nvm";
  compiled.executable->SaveToFile(path);
  auto reloaded = vm::Executable::LoadFromFile(path);
  std::printf("saved and reloaded executable: %zu functions, %zu constants, "
              "%zu packed calls\n",
              reloaded->functions.size(), reloaded->constants.size(),
              reloaded->packed.size());

  std::printf("\n== disassembly ==\n%s\n", reloaded->Disassemble().c_str());

  support::Rng rng(3);
  auto tree = models::RandomTree(6, config.input_size, rng);
  vm::VirtualMachine original(compiled.executable);
  vm::VirtualMachine restored(reloaded);
  auto a = original.Invoke("main", {models::TreeToObject(*tree)});
  auto b = restored.Invoke("main", {models::TreeToObject(*tree)});
  const float* pa = runtime::AsTensor(a).data<float>();
  const float* pb = runtime::AsTensor(b).data<float>();
  bool same = true;
  for (int64_t i = 0; i < runtime::AsTensor(a).num_elements(); ++i) {
    same &= pa[i] == pb[i];
  }
  std::printf("reloaded executable reproduces original results: %s\n",
              same ? "yes" : "NO");
  return same ? 0 : 1;
}
