// HTTP serving demo: the full stack from socket to executable.
//
//   curl -> net::HttpServer (epoll loop) -> serve::Server (queues,
//   adaptive batching, VM pool) -> response JSON
//
// Default mode is a self-contained demo: it stands the server up on an
// ephemeral loopback port, drives a handful of requests through a real
// socket client — a prediction, a malformed body (400), an unknown model
// (404), /stats — and shuts down gracefully. Run with --serve [port] to
// keep serving until stdin closes (or forever when stdin is not a tty),
// then try:
//
//   curl -s localhost:8080/v1/models/lstm:predict -d '{
//     "inputs": [{"shape": [3, 32],
//                 "data": [0.1, 0.2, ... 96 floats ...]},
//                {"scalar": 3}],
//     "length": 3}'
//   curl -s localhost:8080/stats
#include <cstdio>
#include <cstring>
#include <string>

#include "src/core/compiler.h"
#include "src/models/lstm.h"
#include "src/models/workloads.h"
#include "src/net/http_client.h"
#include "src/net/http_server.h"
#include "src/serve/server.h"

using namespace nimble;  // NOLINT

namespace {

/// JSON prediction body for a random [len, input_size] sequence plus the
/// LSTM's scalar-length argument.
std::string MakeBody(int64_t len, int64_t input_size, support::Rng& rng) {
  runtime::NDArray x = models::RandomSequence(len, input_size, rng);
  net::Json tensor = net::Json::Object();
  net::Json shape = net::Json::Array();
  shape.Append(len);
  shape.Append(input_size);
  tensor.Set("shape", std::move(shape));
  net::Json data = net::Json::Array();
  const float* src = x.data<float>();
  for (int64_t i = 0; i < x.num_elements(); ++i) {
    data.Append(static_cast<double>(src[i]));
  }
  tensor.Set("data", std::move(data));
  net::Json scalar = net::Json::Object();
  scalar.Set("scalar", len);
  net::Json inputs = net::Json::Array();
  inputs.Append(std::move(tensor));
  inputs.Append(std::move(scalar));
  net::Json body = net::Json::Object();
  body.Set("inputs", std::move(inputs));
  body.Set("length", len);
  return body.Dump();
}

}  // namespace

int main(int argc, char** argv) {
  bool serve_forever = false;
  uint16_t port = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serve") == 0) {
      serve_forever = true;
      port = 8080;
    } else {
      port = static_cast<uint16_t>(std::atoi(argv[i]));
    }
  }

  // 1. Compile the model (batched entry included, so whole buckets run as
  //    single packed invocations).
  models::LSTMConfig config;
  config.input_size = 32;
  config.hidden_size = 64;
  config.emit_batched = true;
  auto model = models::BuildLSTM(config);
  core::CompileOptions compile_opts;
  compile_opts.batched_entries = {model.batched_spec};
  auto compiled = core::Compile(model.module, compile_opts);

  // 2. Serving pipeline: 2 workers, bounded queue, tensor batching, and
  //    the adaptive wait controller steering flush deadlines from the
  //    arrival rate.
  serve::ServeConfig serve_config;
  serve_config.num_workers = 2;
  serve::Server server(serve_config);
  serve::ModelConfig model_config;
  model_config.exec = compiled.executable;
  model_config.queue_capacity = 64;
  model_config.batch.max_batch_size = 4;
  model_config.batch.tensor_batching = true;
  model_config.batch.adaptive = true;
  server.AddModel("lstm", std::move(model_config));
  server.Start();

  // 3. HTTP front end on top.
  net::HttpServerConfig http_config;
  http_config.port = port;
  net::HttpServer http(&server, http_config);
  http.Start();
  std::printf("serving model 'lstm' on http://127.0.0.1:%u\n", http.port());

  if (serve_forever) {
    std::printf("POST /v1/models/lstm:predict | GET /stats | GET /healthz\n");
    std::printf("press Ctrl-D (EOF) to stop\n");
    while (std::getchar() != EOF) {
    }
  } else {
    // Demo: drive the server through a real loopback socket.
    support::Rng rng(7);
    net::BlockingHttpClient client("127.0.0.1", http.port());
    for (int64_t len : {5, 9, 3}) {
      auto r = client.Post("/v1/models/lstm:predict",
                           MakeBody(len, config.input_size, rng));
      net::Json doc = net::Json::Parse(r.body);
      const net::Json* shape = doc.Find("shape");
      std::printf("predict len %lld -> %d, result shape %s\n",
                  static_cast<long long>(len), r.status,
                  shape != nullptr ? shape->Dump().c_str() : "?");
    }
    auto bad = client.Post("/v1/models/lstm:predict", "{\"oops\": true}");
    std::printf("malformed body -> %d\n", bad.status);
    auto missing = client.Post("/v1/models/nope:predict", "{}");
    std::printf("unknown model -> %d\n", missing.status);
    auto stats = client.Get("/stats");
    net::Json doc = net::Json::Parse(stats.body);
    const net::Json* lstm = doc.Find("models") != nullptr
                                ? doc.Find("models")->Find("lstm")
                                : nullptr;
    if (lstm != nullptr) {
      std::printf(
          "stats: completed %lld, mean queue-wait %.0f us, mean exec %.0f "
          "us\n",
          static_cast<long long>(lstm->Find("completed")->integer()),
          lstm->Find("mean_queue_wait_us")->number(),
          lstm->Find("mean_exec_us")->number());
    }
  }

  // 4. Graceful teardown: stop the front end (flushes in-flight
  //    responses), then drain the pipeline (fulfills everything admitted).
  http.Stop();
  server.Drain();
  std::printf("drained; aggregate: %s\n", server.stats().ToString().c_str());
  return 0;
}
