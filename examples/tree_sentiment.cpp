// Tree-LSTM example: sentiment-style evaluation over SST-like binarized
// trees (the paper's dynamic-data-structure workload). Trees are algebraic
// data types; the recursion and pattern matching execute as VM bytecode
// (AllocADT / GetTag / GetField / Invoke).
#include <cstdio>

#include "src/core/compiler.h"
#include "src/models/tree_lstm.h"
#include "src/models/workloads.h"
#include "src/vm/vm.h"

using namespace nimble;  // NOLINT

int main() {
  models::TreeLSTMConfig config;
  config.input_size = 32;
  config.hidden_size = 64;
  auto model = models::BuildTreeLSTM(config);

  core::CompileResult compiled = core::Compile(model.module);
  vm::VirtualMachine machine(compiled.executable);

  support::Rng rng(23);
  auto sizes = models::SampleSSTSizes(5, rng);
  for (int leaves : sizes) {
    auto tree = models::RandomTree(leaves, config.input_size, rng);
    auto out = machine.Invoke("main", {models::TreeToObject(*tree)});
    const auto& h = runtime::AsTensor(out);
    // A toy "sentiment score": mean of the root hidden state.
    float score = 0.0f;
    for (int64_t i = 0; i < h.num_elements(); ++i) score += h.data<float>()[i];
    score /= static_cast<float>(h.num_elements());
    std::printf("tree with %2d leaves (%2d nodes) -> score % .4f\n", leaves,
                tree->num_nodes(), score);
  }
  return 0;
}
