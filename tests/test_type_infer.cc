// Tests for the dynamic type system (§4.1): the broadcast Any rules,
// operator type relations, symbolic dim propagation, sub-shaping at
// control-flow joins, and gradual-typing behaviour.
#include <gtest/gtest.h>

#include "src/ir/module.h"
#include "src/op/registry.h"
#include "src/pass/type_infer.h"

namespace nimble {
namespace {

using namespace ir;  // NOLINT
using pass::InferExprType;
using pass::InferTypes;
using pass::JoinTypes;

Expr V(const char* name, Type t) { return MakeVar(name, std::move(t)); }

// ---- the paper's broadcast rules, as a parameterized sweep -----------------

struct BroadcastCase {
  Dim lhs, rhs;
  Dim expected;
  bool error = false;
};

class BroadcastRelTest : public ::testing::TestWithParam<BroadcastCase> {};

TEST_P(BroadcastRelTest, PropagatesPerPaperRules) {
  const BroadcastCase& c = GetParam();
  Expr call = op::Call2("add", V("a", TensorType(Shape{c.lhs})),
                        V("b", TensorType(Shape{c.rhs})));
  if (c.error) {
    EXPECT_THROW(InferExprType(call), Error);
    return;
  }
  Type t = InferExprType(call);
  const Dim& out = AsTensorType(t)->shape[0];
  EXPECT_EQ(out.kind(), c.expected.kind());
  if (c.expected.is_static()) EXPECT_EQ(out.value(), c.expected.value());
  if (c.expected.is_sym()) EXPECT_EQ(out.sym_id(), c.expected.sym_id());
}

Dim sym = Dim::Sym(991, "L");

INSTANTIATE_TEST_SUITE_P(
    PaperRules, BroadcastRelTest,
    ::testing::Values(
        // static x static
        BroadcastCase{Dim::Static(4), Dim::Static(4), Dim::Static(4)},
        BroadcastCase{Dim::Static(1), Dim::Static(4), Dim::Static(4)},
        BroadcastCase{Dim::Static(4), Dim::Static(1), Dim::Static(4)},
        BroadcastCase{Dim::Static(3), Dim::Static(4), Dim{}, true},
        // broadcast_rel(Any, 1) -> Any
        BroadcastCase{Dim::Any(), Dim::Static(1), Dim::Any()},
        // broadcast_rel(Any, d) -> d for d > 1 (checked at runtime)
        BroadcastCase{Dim::Any(), Dim::Static(5), Dim::Static(5)},
        BroadcastCase{Dim::Static(5), Dim::Any(), Dim::Static(5)},
        // broadcast_rel(Any, Any) -> Any
        BroadcastCase{Dim::Any(), Dim::Any(), Dim::Any()},
        // identical symbolic dims broadcast to themselves
        BroadcastCase{sym, sym, sym},
        // distinct unknowns -> Any
        BroadcastCase{sym, Dim::Any(), Dim::Any()},
        BroadcastCase{sym, Dim::Sym(992), Dim::Any()}));

TEST(BroadcastRel, RankExtension) {
  Type t = InferExprType(op::Call2("add", V("a", TensorType({2, 3})),
                                   V("b", TensorType(std::vector<int64_t>{3}))));
  EXPECT_EQ(TypeToString(t), "Tensor[(2, 3), float32]");
}

TEST(BroadcastRel, DTypeMismatchIsError) {
  EXPECT_THROW(
      InferExprType(op::Call2("add", V("a", TensorType(std::vector<int64_t>{2})),
                              V("b", TensorType(std::vector<int64_t>{2}, DataType::Int64())))),
      Error);
}

TEST(CompareRel, ProducesBool) {
  Type t = InferExprType(op::Call2("less", V("a", ScalarType(DataType::Int64())),
                                   V("b", ScalarType(DataType::Int64()))));
  EXPECT_EQ(AsTensorType(t)->dtype, DataType::Bool());
}

// ---- individual operator relations ------------------------------------------

TEST(OpRels, DensePropagatesSymbolicRows) {
  Dim L = Dim::FreshSym("L");
  Type t = InferExprType(op::Call2("nn.dense",
                                   V("x", TensorType({L, Dim::Static(8)})),
                                   V("w", TensorType({16, 8}))));
  const auto* tt = AsTensorType(t);
  EXPECT_TRUE(tt->shape[0].is_sym());
  EXPECT_EQ(tt->shape[0].sym_id(), L.sym_id());
  EXPECT_EQ(tt->shape[1].value(), 16);
}

TEST(OpRels, DenseContractionMismatchIsError) {
  EXPECT_THROW(InferExprType(op::Call2("nn.dense", V("x", TensorType({2, 8})),
                                       V("w", TensorType({16, 9})))),
               Error);
}

TEST(OpRels, ConcatSumsStaticAxis) {
  Type t = InferExprType(op::Call2("concat", V("a", TensorType({2, 3})),
                                   V("b", TensorType({4, 3})),
                                   Attrs().Set("axis", 0)));
  EXPECT_EQ(TypeToString(t), "Tensor[(6, 3), float32]");
}

TEST(OpRels, ConcatWithAnyBecomesAny) {
  Type t = InferExprType(
      op::Call2("concat", V("a", TensorType({Dim::Any(), Dim::Static(3)})),
                V("b", TensorType({4, 3})), Attrs().Set("axis", 0)));
  EXPECT_TRUE(AsTensorType(t)->shape[0].is_any());
  EXPECT_EQ(AsTensorType(t)->shape[1].value(), 3);
}

TEST(OpRels, SplitProducesTuple) {
  Type t = InferExprType(op::Call1("split", V("x", TensorType({1, 8})),
                                   Attrs().Set("sections", 4).Set("axis", 1)));
  const auto* tt = AsTupleType(t);
  ASSERT_EQ(tt->fields.size(), 4u);
  EXPECT_EQ(TypeToString(tt->fields[0]), "Tensor[(1, 2), float32]");
  EXPECT_THROW(
      InferExprType(op::Call1("split", V("x", TensorType({1, 9})),
                              Attrs().Set("sections", 4).Set("axis", 1))),
      Error);
}

TEST(OpRels, TakeComposesIndexAndDataShapes) {
  Type t = InferExprType(
      op::Call2("take", V("table", TensorType({100, 16})),
                V("ids", TensorType({Dim::FreshSym("L")}, DataType::Int64()))));
  const auto* tt = AsTensorType(t);
  EXPECT_TRUE(tt->shape[0].is_sym());
  EXPECT_EQ(tt->shape[1].value(), 16);
}

TEST(OpRels, ArangeIsDataDependentAny) {
  Expr s = V("s", ScalarType(DataType::Int64()));
  Type t = InferExprType(op::Call3("arange", s, s, s));
  EXPECT_TRUE(AsTensorType(t)->shape[0].is_any());
  const auto& info = op::OpRegistry::Global()->Get("arange");
  EXPECT_EQ(info.shape_mode, op::ShapeFuncMode::kDataDependent);
}

TEST(OpRels, NMSIsUpperBound) {
  Type t = InferExprType(op::Call1("nn.nms", V("boxes", TensorType({10, 5}))));
  const auto* tt = AsTupleType(t);
  ASSERT_EQ(tt->fields.size(), 2u);
  EXPECT_EQ(op::OpRegistry::Global()->Get("nn.nms").shape_mode,
            op::ShapeFuncMode::kUpperBound);
}

TEST(OpRels, ReshapeInfersMinusOne) {
  Type t = InferExprType(
      op::Call1("reshape", V("x", TensorType({4, 6})),
                Attrs().Set("newshape", std::vector<int64_t>{3, -1})));
  EXPECT_EQ(TypeToString(t), "Tensor[(3, 8), float32]");
}

TEST(OpRels, ReshapeZeroCopiesDynamicDim) {
  Dim L = Dim::FreshSym("L");
  Type t = InferExprType(
      op::Call1("reshape", V("x", TensorType({L, Dim::Static(6)})),
                Attrs().Set("newshape", std::vector<int64_t>{0, 2, 3})));
  const auto* tt = AsTensorType(t);
  EXPECT_TRUE(tt->shape[0].is_sym());
  EXPECT_EQ(tt->shape[1].value(), 2);
}

TEST(OpRels, TransposePermutes) {
  Dim L = Dim::FreshSym("L");
  Type t = InferExprType(
      op::Call1("transpose", V("x", TensorType({L, Dim::Static(4), Dim::Static(8)})),
                Attrs().Set("axes", std::vector<int64_t>{1, 0, 2})));
  const auto* tt = AsTensorType(t);
  EXPECT_EQ(tt->shape[0].value(), 4);
  EXPECT_TRUE(tt->shape[1].is_sym());
}

TEST(OpRels, LSTMCellChecksGateWidth) {
  Type ok = InferExprType(op::Call2("nn.lstm_cell", V("g", TensorType({1, 32})),
                                    V("c", TensorType({1, 8}))));
  EXPECT_EQ(AsTupleType(ok)->fields.size(), 2u);
  EXPECT_THROW(InferExprType(op::Call2("nn.lstm_cell",
                                       V("g", TensorType({1, 30})),
                                       V("c", TensorType({1, 8})))),
               Error);
}

// ---- joins and whole-program inference --------------------------------------

TEST(Joins, AgreeingDimsStay) {
  Type t = JoinTypes(TensorType({3, 4}), TensorType({3, 4}));
  EXPECT_EQ(TypeToString(t), "Tensor[(3, 4), float32]");
}

TEST(Joins, DisagreeingDimsWidenToAny) {
  Type t = JoinTypes(TensorType({3, 4}), TensorType({5, 4}));
  const auto* tt = AsTensorType(t);
  EXPECT_TRUE(tt->shape[0].is_any());
  EXPECT_EQ(tt->shape[1].value(), 4);
}

TEST(Joins, RankOrDtypeMismatchIsError) {
  EXPECT_THROW(JoinTypes(TensorType(std::vector<int64_t>{3}), TensorType({3, 1})), Error);
  EXPECT_THROW(
      JoinTypes(TensorType(std::vector<int64_t>{3}), TensorType(std::vector<int64_t>{3}, DataType::Int64())), Error);
}

TEST(InferModule, IfWidensBranches) {
  // if (c) then Tensor[(2,)] else Tensor[(3,)]  =>  Tensor[(?,)]
  Module mod;
  Var c = MakeVar("c", ScalarType(DataType::Bool()));
  Var a = MakeVar("a", TensorType(std::vector<int64_t>{2}));
  Var b = MakeVar("b", TensorType(std::vector<int64_t>{3}));
  mod.Add("main", MakeFunction({c, a, b}, MakeIf(c, a, b)));
  InferTypes(&mod);
  Type ret = AsFuncType(mod.Lookup("main")->checked_type)->ret;
  EXPECT_TRUE(AsTensorType(ret)->shape[0].is_any());
}

TEST(InferModule, RecursionRequiresAnnotation) {
  Module mod;
  Var x = MakeVar("x", TensorType(std::vector<int64_t>{2}));
  GlobalVar self = MakeGlobalVar("f");
  // f(x) = f(x) with no declared return type: must be rejected.
  mod.Add("f", MakeFunction({x}, MakeCall(self, {x})));
  EXPECT_THROW(InferTypes(&mod), Error);
}

TEST(InferModule, AnnotatedRecursionTypes) {
  Module mod;
  Var x = MakeVar("x", TensorType(std::vector<int64_t>{2}));
  Var c = MakeVar("c", ScalarType(DataType::Bool()));
  GlobalVar self = MakeGlobalVar("f");
  mod.Add("f", MakeFunction({c, x}, MakeIf(c, MakeCall(self, {c, x}), x),
                            TensorType(std::vector<int64_t>{2})));
  InferTypes(&mod);
  EXPECT_EQ(TypeToString(AsFuncType(mod.Lookup("f")->checked_type)->ret),
            "Tensor[(2), float32]");
}

TEST(InferModule, ArityMismatchIsError) {
  Module mod;
  Var x = MakeVar("x", TensorType(std::vector<int64_t>{2}));
  mod.Add("id", MakeFunction({x}, x));
  Var y = MakeVar("y", TensorType(std::vector<int64_t>{2}));
  mod.Add("main", MakeFunction(
                      {y}, MakeCall(MakeGlobalVar("id"), {y, y})));
  EXPECT_THROW(InferTypes(&mod), Error);
}

TEST(InferModule, SubShapingAcceptsSpecificArgument) {
  // A function expecting Tensor[(?,)] may be called with Tensor[(3,)].
  Module mod;
  Var p = MakeVar("p", TensorType({Dim::Any()}));
  mod.Add("id", MakeFunction({p}, p));
  Var y = MakeVar("y", TensorType(std::vector<int64_t>{3}));
  mod.Add("main", MakeFunction({y}, MakeCall(MakeGlobalVar("id"), {y})));
  EXPECT_NO_THROW(InferTypes(&mod));
}

TEST(InferModule, MatchBindsConstructorFields) {
  Module mod;
  const TypeData& data = mod.DefineADT(
      "Opt", {{"NoneV", {}}, {"SomeV", {TensorType(std::vector<int64_t>{2})}}});
  Var s = MakeVar("s", ADTType("Opt"));
  Var bound = MakeVar("v");
  Var fallback = MakeVar("fb", TensorType(std::vector<int64_t>{2}));
  Expr m = MakeMatch(s, {MatchClause{data.constructors[1], {bound}, bound},
                         MatchClause{data.constructors[0], {}, fallback}});
  mod.Add("main", MakeFunction({s, fallback}, m));
  InferTypes(&mod);
  EXPECT_EQ(TypeToString(AsFuncType(mod.Lookup("main")->checked_type)->ret),
            "Tensor[(2), float32]");
}

TEST(InferModule, IfConditionMustBeBoolScalar) {
  Module mod;
  Var c = MakeVar("c", TensorType(std::vector<int64_t>{2}, DataType::Bool()));
  Var a = MakeVar("a", TensorType(std::vector<int64_t>{1}));
  mod.Add("main", MakeFunction({c, a}, MakeIf(c, a, a)));
  EXPECT_THROW(InferTypes(&mod), Error);
}

}  // namespace
}  // namespace nimble
