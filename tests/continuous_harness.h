// Shared driver for the continuous-batching randomized test harness.
//
// One ContinuousHarness owns a compiled LSTM (batched + step twins stamped)
// and can replay any schedfuzz::FuzzSchedule against it end to end:
//
//   1. generate each request's input from the schedule's seed and compute
//      the sequential single-VM reference result;
//   2. serve the same requests through a Server in continuous mode
//      (BatchPolicy::continuous -> batch::StepRunner slot map), honouring
//      the schedule's inter-arrival gaps;
//   3. assert bitwise equality against the reference for every request,
//      FIFO admission (splice timestamps non-decreasing in submission
//      order), and the slot-map accounting invariants:
//        - every request spliced exactly once and completed exactly once
//          (splices == completed == n, failed == 0 — no leak, no double
//          retire at the stats level; SlotMap CHECKs the same per-slot);
//        - live row steps == sum of request lengths (each request holds a
//          slot for exactly its own length — step-granular retire);
//        - row steps == steps * slots (the fixed-B step loop);
//        - zero packed batches (nothing on this path ever pads);
//   4. cross-check the step journal against the same ground truth: one
//      record per step with strictly increasing seqs, exactly one splice
//      and one retire event per request, per-request slot residency
//      (retire_step - splice_step + 1 == length), and the per-step
//      active-row counts summing to the live row steps. The harness sizes
//      the ring (65536) so no record is overwritten mid-run.
//
// RunSchedule returns "" on success or a failure message that embeds the
// schedule's replay line (seed + flavor), so both consumers — the gtest
// smoke tests in tests/test_continuous.cc (fixed seeds, part of ctest) and
// the standalone sweeper tests/sched_harness.cc (--runs/--seed, thousands
// of schedules, nightly CI) — report replayable failures. This header is
// deliberately gtest-free so the harness binary stays assertion-framework
// independent.
#pragma once

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/compiler.h"
#include "src/models/lstm.h"
#include "src/models/workloads.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/object.h"
#include "src/serve/server.h"
#include "src/vm/vm.h"
#include "tests/sched_fuzz.h"

namespace nimble {
namespace schedfuzz {

/// "" when bit-identical, else a description of the first divergence.
inline std::string CompareBits(const runtime::NDArray& got,
                               const runtime::NDArray& want, size_t index) {
  std::ostringstream os;
  if (got.shape() != want.shape()) {
    os << "request " << index << ": shape mismatch";
    return os.str();
  }
  const float* pg = got.data<float>();
  const float* pw = want.data<float>();
  for (int64_t j = 0; j < got.num_elements(); ++j) {
    if (pg[j] != pw[j]) {
      os << "request " << index << ": bit divergence at flat index " << j
         << " (got " << pg[j] << ", want " << pw[j] << ")";
      return os.str();
    }
  }
  return "";
}

struct ContinuousHarness {
  models::LSTMModel model;
  std::shared_ptr<vm::Executable> exec;
  int64_t input_size = 8;

  explicit ContinuousHarness(int hidden_size = 12, int num_layers = 1,
                             uint64_t weight_seed = 7) {
    models::LSTMConfig config;
    config.input_size = input_size;
    config.hidden_size = hidden_size;
    config.num_layers = num_layers;
    config.seed = weight_seed;
    config.emit_batched = true;
    model = models::BuildLSTM(config);
    ir::Module mod = model.module;
    core::CompileOptions opts;
    opts.batched_entries = {model.batched_spec};
    exec = core::Compile(mod, opts).executable;
  }

  /// Replays `schedule` against a `num_slots`-slot continuous server.
  /// Returns "" on success, else the first failure (with the replay line).
  std::string RunSchedule(const FuzzSchedule& schedule, int64_t num_slots) {
    using runtime::MakeTensor;
    using runtime::NDArray;
    const size_t n = schedule.requests.size();

    // Inputs and the sequential reference, from the schedule's own seed
    // (offset so the input stream is independent of the arrival stream).
    support::Rng rng(schedule.seed ^ 0xc0ffee);
    std::vector<NDArray> inputs;
    std::vector<NDArray> expected;
    inputs.reserve(n);
    expected.reserve(n);
    {
      vm::VirtualMachine sequential(exec);
      for (const FuzzRequest& r : schedule.requests) {
        NDArray x = models::RandomSequence(r.length, input_size, rng);
        inputs.push_back(x);
        expected.push_back(runtime::AsTensor(sequential.Invoke(
            "main",
            {MakeTensor(x), MakeTensor(NDArray::Scalar<int64_t>(r.length))})));
      }
    }

    serve::ServeConfig config;
    config.num_workers = 1;  // unused: a pure-continuous server has no pool
    // Big enough that a sweep's longest schedule never wraps the ring: the
    // journal invariants below need every step of the run on record.
    config.step_journal.ring_capacity = 65536;
    serve::Server server(config);
    serve::ModelConfig mc;
    mc.exec = exec;
    // Roomy queue: this driver asserts serving invariants, not shedding
    // (admission-overflow behaviour has its own tests).
    mc.queue_capacity = n + 1;
    mc.batch.continuous = true;
    mc.batch.continuous_slots = num_slots;
    server.AddModel("lstm", std::move(mc));
    server.Start();

    struct Completion {
      std::atomic<bool> done{false};
      runtime::ObjectRef result;
      std::exception_ptr error;
      obs::TraceContext trace{};
    };
    std::vector<Completion> completions(n);

    for (size_t i = 0; i < n; ++i) {
      const FuzzRequest& r = schedule.requests[i];
      if (r.arrival_gap_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(r.arrival_gap_us));
      }
      Completion* c = &completions[i];
      auto admit = server.TrySubmitCallback(
          "lstm",
          {MakeTensor(inputs[i]), MakeTensor(NDArray::Scalar<int64_t>(
                                      schedule.requests[i].length))},
          r.length,
          [c](runtime::ObjectRef result, std::exception_ptr error,
              const obs::TraceContext& trace) {
            c->result = std::move(result);
            c->error = error;
            c->trace = trace;
            c->done.store(true, std::memory_order_release);
          });
      if (!admit.accepted()) {
        std::ostringstream os;
        os << "request " << i << " not admitted " << schedule.Describe();
        return os.str();
      }
    }

    // Drain joins the runner, which exits only after retiring every slot;
    // every callback has therefore fired by the time this returns.
    server.Drain();

    for (size_t i = 0; i < n; ++i) {
      if (!completions[i].done.load(std::memory_order_acquire)) {
        std::ostringstream os;
        os << "request " << i << " never completed " << schedule.Describe();
        return os.str();
      }
      if (completions[i].error != nullptr) {
        std::string what = "unknown error";
        try {
          std::rethrow_exception(completions[i].error);
        } catch (const std::exception& e) {
          what = e.what();
        } catch (...) {
        }
        std::ostringstream os;
        os << "request " << i << " failed: " << what << " "
           << schedule.Describe();
        return os.str();
      }
      std::string diff = CompareBits(runtime::AsTensor(completions[i].result),
                                     expected[i], i);
      if (!diff.empty()) return diff + " " + schedule.Describe();
    }

    // FIFO admission: the runner splices in queue order on one thread, so
    // splice (dispatch) timestamps must be non-decreasing in submission
    // order.
    for (size_t i = 1; i < n; ++i) {
      if (completions[i].trace.dispatch < completions[i - 1].trace.dispatch) {
        std::ostringstream os;
        os << "FIFO violation: request " << i << " spliced before request "
           << (i - 1) << " " << schedule.Describe();
        return os.str();
      }
    }

    // Slot-map accounting invariants over the whole run.
    auto snap = server.stats("lstm");
    int64_t total_len = 0;
    for (const FuzzRequest& r : schedule.requests) total_len += r.length;
    std::ostringstream os;
    if (snap.splices != static_cast<int64_t>(n)) {
      os << "splices " << snap.splices << " != requests " << n;
    } else if (snap.completed != static_cast<int64_t>(n) || snap.failed != 0) {
      os << "completed " << snap.completed << " failed " << snap.failed
         << " != requests " << n;
    } else if (snap.continuous_row_steps - snap.continuous_idle_row_steps !=
               total_len) {
      os << "live row steps "
         << (snap.continuous_row_steps - snap.continuous_idle_row_steps)
         << " != total request length " << total_len
         << " (a slot held a request for the wrong number of steps)";
    } else if (snap.continuous_row_steps !=
               snap.continuous_steps * num_slots) {
      os << "row steps " << snap.continuous_row_steps << " != steps "
         << snap.continuous_steps << " * slots " << num_slots;
    } else if (snap.packed_batches != 0 || snap.padded_elements != 0) {
      os << "continuous path reported packed/padded batches";
    }
    std::string failure = os.str();
    if (!failure.empty()) return failure + " " + schedule.Describe();

    // Step-journal cross-check against the same ground truth. The journal
    // is written by the runner thread only; after Drain() the runner has
    // joined, so this read races with nothing.
    failure = CheckJournal(server, schedule, snap.continuous_steps, num_slots,
                           completions.data(), n);
    if (!failure.empty()) return failure + " " + schedule.Describe();
    return "";
  }

 private:
  template <typename Completion>
  std::string CheckJournal(const serve::Server& server,
                           const FuzzSchedule& schedule, int64_t steps,
                           int64_t num_slots, const Completion* completions,
                           size_t n) {
    std::ostringstream os;
    auto views = server.continuous_models();
    if (views.size() != 1 || views[0].journal == nullptr) {
      return "expected one continuous model with a journal";
    }
    const obs::StepJournal& journal = *views[0].journal;
    std::vector<obs::StepRecord> records = journal.Tail(journal.config().ring_capacity);
    if (journal.steps_recorded() != steps ||
        records.size() != static_cast<size_t>(steps)) {
      os << "journal recorded " << journal.steps_recorded() << " steps ("
         << records.size() << " retained) != stats steps " << steps;
      return os.str();
    }

    // Per-request splice/retire record steps, keyed by trace id.
    struct Residency {
      int64_t splice_step = -1;
      int64_t retire_step = -1;
      int64_t slot = -1;
      int64_t length = 0;
    };
    std::map<int64_t, Residency> residency;
    int64_t active_sum = 0;
    for (size_t i = 0; i < records.size(); ++i) {
      const obs::StepRecord& record = records[i];
      if (record.step != static_cast<int64_t>(i) || !record.ok ||
          record.num_slots != num_slots) {
        os << "journal step " << i << " malformed (seq " << record.step
           << ", ok " << record.ok << ", slots " << record.num_slots << ")";
        return os.str();
      }
      active_sum += record.active_rows;
      for (const obs::StepEvent& event : record.events) {
        Residency& r = residency[event.request_id];
        if (event.kind == obs::StepEvent::Kind::kSplice) {
          if (r.splice_step != -1) {
            os << "request " << event.request_id << " spliced twice";
            return os.str();
          }
          r.splice_step = record.step;
          r.slot = event.slot;
          r.length = event.length;
        } else {
          if (r.splice_step == -1 || r.retire_step != -1) {
            os << "request " << event.request_id
               << " retired without a matching splice";
            return os.str();
          }
          r.retire_step = record.step;
        }
      }
    }

    // Σ active rows over all steps is exactly the live row steps: each
    // request contributes one active row per step of its residency.
    int64_t total_len = 0;
    for (const FuzzRequest& r : schedule.requests) total_len += r.length;
    if (active_sum != total_len) {
      os << "journal active-row sum " << active_sum
         << " != total request length " << total_len;
      return os.str();
    }

    if (residency.size() != n) {
      os << "journal saw " << residency.size() << " requests != " << n;
      return os.str();
    }
    for (size_t i = 0; i < n; ++i) {
      const obs::TraceContext& trace = completions[i].trace;
      auto it = residency.find(trace.id);
      if (it == residency.end()) {
        os << "request " << i << " (id " << trace.id << ") not in journal";
        return os.str();
      }
      const Residency& r = it->second;
      const int64_t length = schedule.requests[i].length;
      if (r.retire_step == -1 ||
          r.retire_step - r.splice_step + 1 != length || r.length != length) {
        os << "request " << i << " resident steps "
           << (r.retire_step - r.splice_step + 1) << " != length " << length;
        return os.str();
      }
      // The journal and the request's own trace must tell the same story.
      if (trace.slot != r.slot || trace.splice_step != r.splice_step ||
          trace.retire_step != r.retire_step ||
          trace.steps_resident() != length || !trace.continuous) {
        os << "request " << i << " trace (slot " << trace.slot
           << ", splice " << trace.splice_step << ", retire "
           << trace.retire_step << ") disagrees with journal (slot " << r.slot
           << ", splice " << r.splice_step << ", retire " << r.retire_step
           << ")";
        return os.str();
      }
    }
    return "";
  }
};

}  // namespace schedfuzz
}  // namespace nimble
