// Randomized schedule sweeper for continuous batching (not a gtest).
//
// Generates arrival/length schedules from sequential seeds (all three
// sched_fuzz flavors, slot counts cycled per seed) and replays each one
// through a continuous Server via schedfuzz::ContinuousHarness, asserting
// bitwise identity against sequential execution plus the slot-map
// invariants. On the first failure it prints the replay line, appends the
// seed to --fail-file (CI uploads it as an artifact), and exits 1.
//
//   sched_harness --runs 2000                  # nightly sweep
//   sched_harness --runs 25 --base-seed 1      # CI smoke (fixed seeds)
//   sched_harness --seed 1337                  # replay one failing seed
//
// Flags:
//   --runs N        schedules to run (default 200); ignored with --seed
//   --seed S        replay exactly one seed and exit
//   --base-seed S   first seed of the sweep (default 1)
//   --flavor F      force poisson|bursty|adversarial (default: from seed)
//   --requests N    requests per schedule (default 24)
//   --max-len N     maximum sequence length (default 12)
//   --slots N       slot count (default: cycles 1,2,4,8 by seed)
//   --pool N        size the global kernel pool to N threads and drop the
//                   parallel-dense threshold to 1, so even the harness's
//                   tiny denses route through the tiled+parallel path —
//                   the bit-identity assertion then covers it end to end
//   --fail-file P   append failing seeds to P (one per line)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "src/codegen/parallel.h"
#include "tests/continuous_harness.h"
#include "tests/sched_fuzz.h"

namespace {

int64_t ParseInt(const char* flag, const char* value) {
  char* end = nullptr;
  long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "sched_harness: bad value for %s: '%s'\n", flag,
                 value);
    std::exit(2);
  }
  return static_cast<int64_t>(parsed);
}

}  // namespace

int main(int argc, char** argv) {
  using nimble::schedfuzz::ArrivalFlavor;
  using nimble::schedfuzz::ContinuousHarness;
  using nimble::schedfuzz::FuzzSchedule;
  using nimble::schedfuzz::MakeSchedule;

  int64_t runs = 200;
  uint64_t base_seed = 1;
  uint64_t replay_seed = 0;
  bool have_replay_seed = false;
  int64_t num_requests = 24;
  int64_t max_len = 12;
  int64_t forced_slots = 0;  // 0 = cycle by seed
  bool have_flavor = false;
  ArrivalFlavor flavor = ArrivalFlavor::kPoisson;
  std::string fail_file;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sched_harness: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--runs") == 0) {
      runs = ParseInt("--runs", next("--runs"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      replay_seed = static_cast<uint64_t>(ParseInt("--seed", next("--seed")));
      have_replay_seed = true;
    } else if (std::strcmp(argv[i], "--base-seed") == 0) {
      base_seed =
          static_cast<uint64_t>(ParseInt("--base-seed", next("--base-seed")));
    } else if (std::strcmp(argv[i], "--flavor") == 0) {
      const char* name = next("--flavor");
      if (std::strcmp(name, "poisson") == 0) {
        flavor = ArrivalFlavor::kPoisson;
      } else if (std::strcmp(name, "bursty") == 0) {
        flavor = ArrivalFlavor::kBursty;
      } else if (std::strcmp(name, "adversarial") == 0) {
        flavor = ArrivalFlavor::kAdversarial;
      } else {
        std::fprintf(stderr, "sched_harness: unknown flavor '%s'\n", name);
        return 2;
      }
      have_flavor = true;
    } else if (std::strcmp(argv[i], "--requests") == 0) {
      num_requests = ParseInt("--requests", next("--requests"));
    } else if (std::strcmp(argv[i], "--max-len") == 0) {
      max_len = ParseInt("--max-len", next("--max-len"));
    } else if (std::strcmp(argv[i], "--slots") == 0) {
      forced_slots = ParseInt("--slots", next("--slots"));
    } else if (std::strcmp(argv[i], "--pool") == 0) {
      int64_t pool_threads = ParseInt("--pool", next("--pool"));
      nimble::codegen::KernelPool::ConfigureGlobal(
          static_cast<int>(pool_threads));
      nimble::codegen::SetDenseParallelThreshold(1);
    } else if (std::strcmp(argv[i], "--fail-file") == 0) {
      fail_file = next("--fail-file");
    } else {
      std::fprintf(stderr, "sched_harness: unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  if (have_replay_seed) runs = 1;

  ContinuousHarness harness;
  const int64_t slot_cycle[] = {1, 2, 4, 8};
  int64_t passed = 0;
  for (int64_t i = 0; i < runs; ++i) {
    uint64_t seed = have_replay_seed ? replay_seed : base_seed + i;
    // Slot count is a deterministic function of the seed, so a --seed
    // replay reproduces the whole configuration, not just the schedule.
    int64_t num_slots =
        forced_slots > 0 ? forced_slots : slot_cycle[seed % 4];
    FuzzSchedule schedule =
        have_flavor
            ? MakeSchedule(seed, static_cast<int>(num_requests), max_len,
                           flavor)
            : MakeSchedule(seed, static_cast<int>(num_requests), max_len);
    std::string failure = harness.RunSchedule(schedule, num_slots);
    if (!failure.empty()) {
      std::fprintf(stderr, "FAIL (slots=%lld): %s\n",
                   static_cast<long long>(num_slots), failure.c_str());
      if (!fail_file.empty()) {
        std::ofstream out(fail_file, std::ios::app);
        out << seed << "\n";
      }
      return 1;
    }
    ++passed;
    if (passed % 100 == 0) {
      std::printf("sched_harness: %lld/%lld schedules passed\n",
                  static_cast<long long>(passed),
                  static_cast<long long>(runs));
      std::fflush(stdout);
    }
  }
  std::printf(
      "sched_harness: all %lld schedules bit-identical to sequential "
      "(requests=%lld max_len=%lld)\n",
      static_cast<long long>(passed), static_cast<long long>(num_requests),
      static_cast<long long>(max_len));
  return 0;
}
