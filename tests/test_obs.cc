// Observability tests: sharded metric instruments (merge-on-read equals
// the sum of every shard), Prometheus exposition (label escaping,
// cumulative histogram buckets), the trace ring (wraparound, concurrent
// committers), span derivation, chrome-trace export validity, and the
// end-to-end lifecycle — one served request yields one committed trace
// with six ordered spans and a folded VM profile.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/compiler.h"
#include "src/models/lstm.h"
#include "src/models/workloads.h"
#include "src/net/inference_handler.h"
#include "src/net/json.h"
#include "src/obs/export.h"
#include "src/obs/memory.h"
#include "src/obs/metrics.h"
#include "src/obs/step_journal.h"
#include "src/obs/trace.h"
#include "src/runtime/allocator.h"
#include "src/serve/server.h"
#include "src/vm/vm.h"

namespace nimble {
namespace {

using runtime::MakeTensor;
using runtime::NDArray;

// ---- sharded instruments ------------------------------------------------------

TEST(Metrics, CounterMergeEqualsSumOfAllWriters) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(), int64_t{kThreads} * kPerThread)
      << "merge-on-read must equal the sum of every thread's shard";
}

TEST(Metrics, GaugeIsLastWriterWins) {
  obs::Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(17.5);
  gauge.Set(3.0);
  EXPECT_EQ(gauge.Value(), 3.0);
}

TEST(Metrics, HistogramCumulativeBucketsMonotoneAndConsistent) {
  obs::Histogram hist(obs::Histogram::ExponentialBounds(1.0, 2.0, 8));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Observe(static_cast<double>((t * kPerThread + i) % 300));
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<int64_t> buckets = hist.CumulativeBuckets();
  ASSERT_EQ(buckets.size(), hist.bounds().size() + 1) << "+Inf bucket";
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_GE(buckets[i], buckets[i - 1]) << "cumulative must be monotone";
  }
  EXPECT_EQ(buckets.back(), int64_t{kThreads} * kPerThread)
      << "+Inf bucket holds every observation";
  EXPECT_EQ(hist.Count(), int64_t{kThreads} * kPerThread);
  EXPECT_GT(hist.Sum(), 0.0);
}

TEST(Metrics, HistogramBucketBoundsAreInclusive) {
  obs::Histogram hist({1.0, 2.0, 4.0});
  hist.Observe(1.0);  // lands in le="1"
  hist.Observe(1.5);  // le="2"
  hist.Observe(100);  // +Inf
  std::vector<int64_t> buckets = hist.CumulativeBuckets();
  EXPECT_EQ(buckets[0], 1);
  EXPECT_EQ(buckets[1], 2);
  EXPECT_EQ(buckets[2], 2);
  EXPECT_EQ(buckets[3], 3);
}

// ---- registry -----------------------------------------------------------------

TEST(Metrics, RegistryReturnsSameInstrumentForSameSeries) {
  obs::MetricRegistry registry;
  obs::Counter* a = registry.GetCounter("nimble_test_total",
                                        {{"model", "m"}, {"path", "p"}});
  obs::Counter* b = registry.GetCounter("nimble_test_total",
                                        {{"path", "p"}, {"model", "m"}});
  EXPECT_EQ(a, b) << "label order must not split a series";
  obs::Counter* c = registry.GetCounter("nimble_test_total",
                                        {{"model", "other"}, {"path", "p"}});
  EXPECT_NE(a, c);
  a->Increment(5);
  EXPECT_EQ(b->Value(), 5);
  EXPECT_EQ(c->Value(), 0);
}

TEST(Metrics, PrometheusEscapesLabelValues) {
  EXPECT_EQ(obs::MetricRegistry::EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(obs::MetricRegistry::EscapeLabelValue("a\"b\\c\nd"),
            "a\\\"b\\\\c\\nd");

  obs::MetricRegistry registry;
  registry.GetCounter("nimble_escape_total", {{"model", "we\"ird\\name\n"}})
      ->Increment();
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("model=\"we\\\"ird\\\\name\\n\""), std::string::npos)
      << text;
  EXPECT_EQ(text.find('\n', text.find("model=")),
            text.find("} 1", text.find("model=")) + 3)
      << "raw newline inside a label value would split the sample line";
}

TEST(Metrics, PrometheusRenderHasFamiliesAndHistogramSeries) {
  obs::MetricRegistry registry;
  registry.GetCounter("nimble_reqs_total", {{"model", "m"}}, "Requests.")
      ->Increment(3);
  registry.GetGauge("nimble_depth", {{"model", "m"}}, "Depth.")->Set(2);
  obs::Histogram* hist = registry.GetHistogram(
      "nimble_lat_us", {{"model", "m"}}, {1.0, 2.0}, "Latency.");
  hist->Observe(1.0);
  hist->Observe(5.0);

  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP nimble_reqs_total Requests."),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE nimble_reqs_total counter"), std::string::npos);
  EXPECT_NE(text.find("nimble_reqs_total{model=\"m\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE nimble_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("nimble_depth{model=\"m\"} 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE nimble_lat_us histogram"), std::string::npos);
  EXPECT_NE(text.find("nimble_lat_us_bucket{model=\"m\",le=\"1\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("nimble_lat_us_bucket{model=\"m\",le=\"+Inf\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("nimble_lat_us_count{model=\"m\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("nimble_lat_us_sum{model=\"m\"} 6"), std::string::npos);
}

// ---- tracer rings -------------------------------------------------------------

obs::TraceContext MakeTrace(int64_t id) {
  obs::TraceContext ctx;
  ctx.enabled = true;
  ctx.id = id;
  ctx.model = "m";
  auto t = obs::SteadyClock::now();
  ctx.admit = t;
  ctx.enqueue = t + std::chrono::microseconds(10);
  ctx.sched = t + std::chrono::microseconds(20);
  ctx.dispatch = t + std::chrono::microseconds(30);
  ctx.pack_start = t + std::chrono::microseconds(30);
  ctx.pack_end = t + std::chrono::microseconds(40);
  ctx.exec_end = t + std::chrono::microseconds(140);
  ctx.unpack_end = t + std::chrono::microseconds(150);
  ctx.write_end = t + std::chrono::microseconds(160);
  return ctx;
}

TEST(Trace, RingWraparoundKeepsNewestBoundedByCapacity) {
  obs::TraceConfig config;
  config.ring_capacity = 16;
  obs::Tracer tracer(config);
  for (int64_t i = 0; i < 100; ++i) tracer.Commit(MakeTrace(i));
  EXPECT_EQ(tracer.committed(), 100);

  std::vector<obs::TraceRecord> recent = tracer.Recent(1000);
  ASSERT_FALSE(recent.empty());
  EXPECT_LE(recent.size(), 16u) << "ring memory is bounded";
  for (size_t i = 1; i < recent.size(); ++i) {
    EXPECT_GT(recent[i].seq, recent[i - 1].seq) << "commit order";
  }
  EXPECT_EQ(recent.back().seq, 100u) << "the newest trace survives wraparound";
  // Recent(n) trims from the old end.
  std::vector<obs::TraceRecord> one = tracer.Recent(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one.back().seq, 100u);
}

TEST(Trace, DisabledTracerCommitsNothing) {
  obs::TraceConfig config;
  config.enabled = false;
  obs::Tracer tracer(config);
  tracer.Commit(MakeTrace(1));
  EXPECT_EQ(tracer.committed(), 0);
  EXPECT_TRUE(tracer.Recent(10).empty());
}

TEST(Trace, ConcurrentCommittersAndScrapers) {
  obs::TraceConfig config;
  config.ring_capacity = 64;
  obs::Tracer tracer(config);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::atomic<bool> stop{false};
  // A scraper walking the rings while every writer hammers them: the TSan
  // job proves the shard locking sound.
  std::thread scraper([&] {
    while (!stop.load()) {
      auto records = tracer.Recent(64);
      for (size_t i = 1; i < records.size(); ++i) {
        if (records[i].seq <= records[i - 1].seq) {
          ADD_FAILURE() << "scrape saw out-of-order seqs";
          return;
        }
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        tracer.Commit(MakeTrace(t * kPerThread + i));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop = true;
  scraper.join();
  EXPECT_EQ(tracer.committed(), int64_t{kThreads} * kPerThread);
}

TEST(Trace, SlowLogRespectsThresholdAndRateLimit) {
  obs::TraceConfig config;
  config.slow_request_us = 1000;
  config.slow_log_interval_ms = 1000;
  obs::Tracer tracer(config);
  auto now = obs::SteadyClock::now();
  EXPECT_FALSE(tracer.ShouldLogSlow(500, now)) << "under threshold";
  EXPECT_TRUE(tracer.ShouldLogSlow(2000, now)) << "first slow request logs";
  EXPECT_FALSE(tracer.ShouldLogSlow(2000, now)) << "rate-limited";
  EXPECT_FALSE(tracer.ShouldLogSlow(
      2000, now + std::chrono::milliseconds(500)));
  EXPECT_TRUE(tracer.ShouldLogSlow(2000, now + std::chrono::seconds(2)))
      << "limiter window elapsed";
}

TEST(Trace, SlowLogDisabledByZeroThreshold) {
  obs::Tracer tracer;  // slow_request_us = 0
  EXPECT_FALSE(tracer.ShouldLogSlow(int64_t{1} << 40,
                                    obs::SteadyClock::now()));
}

// ---- span derivation and export -----------------------------------------------

TEST(Trace, SpansAreOrderedAndContiguous) {
  obs::TraceContext ctx = MakeTrace(7);
  std::vector<obs::SpanView> spans = obs::TraceSpans(ctx);
  ASSERT_EQ(spans.size(), 6u);
  const char* expected_names[] = {"admission", "queue",  "pack",
                                  "exec",      "unpack", "write"};
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_STREQ(spans[i].name, expected_names[i]);
    EXPECT_LE(spans[i].begin, spans[i].end) << spans[i].name;
    if (i > 0) {
      EXPECT_EQ(spans[i].begin, spans[i - 1].end)
          << "spans tile the request end to end";
    }
  }
  EXPECT_EQ(spans[1].duration_us(), 20) << "queue = enqueue..dispatch";
  EXPECT_EQ(spans[3].duration_us(), 100) << "exec = pack_end..exec_end";
}

TEST(Trace, SpansClampUnstampedStagesToZeroWidth) {
  // Only admit and write_end stamped (a request that died early): no span
  // may invert, and the middle ones collapse to zero width.
  obs::TraceContext ctx;
  ctx.enabled = true;
  ctx.admit = obs::SteadyClock::now();
  ctx.enqueue = ctx.admit + std::chrono::microseconds(5);
  ctx.write_end = ctx.admit + std::chrono::microseconds(50);
  std::vector<obs::SpanView> spans = obs::TraceSpans(ctx);
  ASSERT_EQ(spans.size(), 6u);
  for (const obs::SpanView& span : spans) {
    EXPECT_LE(span.begin, span.end) << span.name << " inverted";
  }
  EXPECT_EQ(spans[2].duration_us(), 0);
  EXPECT_EQ(spans[3].duration_us(), 0);
  EXPECT_GT(spans[5].duration_us(), 0) << "write span absorbs the tail";
}

TEST(Trace, ChromeTraceJsonIsValidAndCarriesExecArgs) {
  obs::TraceConfig config;
  obs::Tracer tracer(config);
  obs::TraceContext ctx = MakeTrace(3);
  ctx.model = "lstm\"quoted";  // exercises the JSON escaping
  ctx.packed = true;
  ctx.vm.kernel_nanos = 123000;
  ctx.vm.shape_func_nanos = 45000;
  ctx.vm.other_nanos = 6000;
  ctx.vm.instructions = 42;
  tracer.Commit(ctx);
  tracer.Commit(MakeTrace(4));

  std::string json = obs::ChromeTraceJson(tracer.Recent(10));
  std::string parse_error;
  net::Json doc = net::Json::Parse(json, &parse_error);
  ASSERT_TRUE(doc.is_object()) << parse_error << "\n" << json;
  const net::Json* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->items().size(), 12u) << "6 spans per trace";

  size_t exec_events = 0;
  for (const net::Json& event : events->items()) {
    ASSERT_TRUE(event.is_object());
    const net::Json* name = event.Find("name");
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(event.Find("ph")->str(), "X") << "complete events";
    EXPECT_GE(event.Find("dur")->number(), 0.0);
    EXPECT_GE(event.Find("ts")->number(), 0.0);
    ASSERT_NE(event.Find("tid"), nullptr) << "tid = request id = track";
    if (name->str() == "exec") {
      exec_events++;
      const net::Json* args = event.Find("args");
      ASSERT_NE(args, nullptr);
      if (event.Find("tid")->integer() == 3) {
        EXPECT_EQ(args->Find("kernel_us")->integer(), 123);
        EXPECT_EQ(args->Find("shape_func_us")->integer(), 45);
        EXPECT_EQ(args->Find("instructions")->integer(), 42);
        EXPECT_EQ(args->Find("model")->str(), "lstm\"quoted");
      }
    }
  }
  EXPECT_EQ(exec_events, 2u);

  EXPECT_NE(obs::ChromeTraceJson({}).find("\"traceEvents\":[]"),
            std::string::npos)
      << "zero records still render a valid document";
}

TEST(Trace, HeaderValueCarriesStageTimings) {
  obs::TraceContext ctx = MakeTrace(9);
  ctx.vm.kernel_nanos = 88000;
  std::string header = obs::TraceHeaderValue(ctx);
  EXPECT_NE(header.find("id=9"), std::string::npos) << header;
  EXPECT_NE(header.find("queue_us="), std::string::npos) << header;
  EXPECT_NE(header.find("exec_us="), std::string::npos) << header;
  EXPECT_NE(header.find("kernel_us=88"), std::string::npos) << header;
  EXPECT_EQ(header.find("write_us="), std::string::npos)
      << "the write span cannot be inside its own header";
  EXPECT_EQ(header.find('\n'), std::string::npos)
      << "header values must be single-line";
}

// ---- step journal -------------------------------------------------------------

obs::StepRecord MakeStep(int64_t step, int64_t active = 2,
                         int64_t slots = 4) {
  obs::StepRecord record;
  record.step = step;
  record.start = obs::SteadyClock::now();
  record.duration_us = 100 + step;
  record.active_rows = active;
  record.num_slots = slots;
  return record;
}

TEST(StepJournal, TailIsNewestRecordsOldestFirstBoundedByCapacity) {
  obs::StepJournalConfig config;
  config.ring_capacity = 16;
  obs::StepJournal journal(config);
  for (int64_t i = 0; i < 100; ++i) journal.Push(MakeStep(i));
  EXPECT_EQ(journal.steps_recorded(), 100)
      << "the push count is monotone, not capped by the ring";

  std::vector<obs::StepRecord> tail = journal.Tail(1000);
  ASSERT_EQ(tail.size(), 16u) << "ring memory is bounded";
  for (size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].step, 84 + static_cast<int64_t>(i))
        << "oldest-first, newest 16 survive wraparound";
  }
  std::vector<obs::StepRecord> four = journal.Tail(4);
  ASSERT_EQ(four.size(), 4u);
  EXPECT_EQ(four.front().step, 96) << "Tail(n) trims from the old end";
  EXPECT_EQ(four.back().step, 99);
}

TEST(StepJournal, ShortRunReturnsExactlyWhatWasPushed) {
  obs::StepJournal journal;  // default capacity far above 3
  obs::StepRecord r = MakeStep(0);
  r.events.push_back(obs::StepEvent{obs::StepEvent::Kind::kSplice, 7, 2, 5});
  journal.Push(std::move(r));
  journal.Push(MakeStep(1));
  std::vector<obs::StepRecord> tail = journal.Tail(10);
  ASSERT_EQ(tail.size(), 2u);
  ASSERT_EQ(tail[0].events.size(), 1u);
  EXPECT_EQ(tail[0].events[0].request_id, 7);
  EXPECT_EQ(tail[0].events[0].slot, 2);
  EXPECT_EQ(tail[0].events[0].length, 5);
  EXPECT_TRUE(tail[1].events.empty());
}

TEST(StepJournal, DisabledJournalRecordsNothing) {
  obs::StepJournalConfig config;
  config.enabled = false;
  obs::StepJournal journal(config);
  journal.Push(MakeStep(0));
  EXPECT_EQ(journal.steps_recorded(), 0);
  EXPECT_TRUE(journal.Tail(10).empty());
}

TEST(StepJournal, ScrapesWhileTheWriterPushes) {
  // The journal's contract is ONE writer (the runner thread) and any
  // number of concurrent readers; the TSan job proves the locking sound.
  obs::StepJournalConfig config;
  config.ring_capacity = 32;
  obs::StepJournal journal(config);
  std::atomic<bool> stop{false};
  std::vector<std::thread> scrapers;
  for (int s = 0; s < 3; ++s) {
    scrapers.emplace_back([&] {
      while (!stop.load()) {
        std::vector<obs::StepRecord> tail = journal.Tail(32);
        for (size_t i = 1; i < tail.size(); ++i) {
          if (tail[i].step != tail[i - 1].step + 1) {
            ADD_FAILURE() << "scrape saw a torn tail";
            return;
          }
        }
      }
    });
  }
  for (int64_t i = 0; i < 5000; ++i) journal.Push(MakeStep(i));
  stop = true;
  for (auto& t : scrapers) t.join();
  EXPECT_EQ(journal.steps_recorded(), 5000);
}

// ---- stall watchdog -----------------------------------------------------------

TEST(StallWatchdog, CheckOnceProvokesAndClearsStall) {
  obs::Gauge gauge;
  // Mutable health the test steers: the same shape the server's source
  // builds from runner atomics.
  obs::RunnerHealth health;
  health.model = "m";
  health.stalled_gauge = &gauge;
  obs::StallWatchdogConfig config;
  config.enabled = false;  // no thread: CheckOnce drives the clock by hand
  config.stall_deadline_ms = 100;
  obs::StallWatchdog watchdog(
      config, [&health] { return std::vector<obs::RunnerHealth>{health}; });

  auto t0 = obs::SteadyClock::now();
  auto ns = [&](obs::SteadyClock::time_point t) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               t.time_since_epoch())
        .count();
  };

  // Idle runner (no live rows): stale progress is legitimate, never a stall.
  health.live_rows = 0;
  health.last_progress_ns = ns(t0);
  EXPECT_EQ(watchdog.CheckOnce(t0 + std::chrono::seconds(10)), 0);
  EXPECT_EQ(gauge.Value(), 0.0);

  // Not yet started (no progress stamp): not a stall either.
  health.live_rows = 3;
  health.last_progress_ns = 0;
  EXPECT_EQ(watchdog.CheckOnce(t0 + std::chrono::seconds(10)), 0);

  // Live rows within the deadline: healthy.
  health.last_progress_ns = ns(t0);
  EXPECT_EQ(watchdog.CheckOnce(t0 + std::chrono::milliseconds(50)), 0);
  EXPECT_EQ(gauge.Value(), 0.0);

  // Deadline blown: stalled, gauge flips.
  EXPECT_EQ(watchdog.CheckOnce(t0 + std::chrono::milliseconds(500)), 1);
  EXPECT_EQ(gauge.Value(), 1.0);
  EXPECT_EQ(watchdog.stalled_count(), 1);

  // Progress resumes: the stall clears and the gauge drops back.
  health.last_progress_ns = ns(t0 + std::chrono::milliseconds(490));
  EXPECT_EQ(watchdog.CheckOnce(t0 + std::chrono::milliseconds(500)), 0);
  EXPECT_EQ(gauge.Value(), 0.0);
  EXPECT_EQ(watchdog.stalled_count(), 0);
}

TEST(StallWatchdog, PollingThreadStartsAndStopsCleanly) {
  obs::StallWatchdogConfig config;
  config.poll_interval_ms = 5;
  config.stall_deadline_ms = 1;
  obs::Gauge gauge;
  std::atomic<int64_t> progress_ns{1};  // ancient progress, rows live
  obs::StallWatchdog watchdog(config, [&] {
    obs::RunnerHealth h;
    h.model = "m";
    h.live_rows = 1;
    h.last_progress_ns = progress_ns.load();
    h.stalled_gauge = &gauge;
    return std::vector<obs::RunnerHealth>{h};
  });
  watchdog.Start();
  // The poll loop must notice the wedge on its own within a few intervals.
  for (int i = 0; i < 200 && gauge.Value() != 1.0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(gauge.Value(), 1.0) << "polling thread never flagged the stall";
  watchdog.Stop();
  watchdog.Stop();  // idempotent
}

// ---- step-journal export ------------------------------------------------------

TEST(StepJournal, JournalJsonIsValidAndCarriesEvents) {
  obs::StepRecord r0 = MakeStep(0, /*active=*/1, /*slots=*/2);
  r0.events.push_back(obs::StepEvent{obs::StepEvent::Kind::kSplice, 5, 0, 3});
  r0.vm.kernel_nanos = 9000;
  r0.vm.instructions = 4;
  obs::StepRecord r1 = MakeStep(1, 1, 2);
  r1.ok = false;
  r1.events.push_back(obs::StepEvent{obs::StepEvent::Kind::kRetire, 5, 0, 3});

  std::string json = obs::StepJournalJson("m\"q", 2, 17, {r0, r1});
  std::string parse_error;
  net::Json doc = net::Json::Parse(json, &parse_error);
  ASSERT_TRUE(doc.is_object()) << parse_error << "\n" << json;
  EXPECT_EQ(doc.Find("model")->str(), "m\"q");
  EXPECT_EQ(doc.Find("num_slots")->integer(), 2);
  EXPECT_EQ(doc.Find("steps_recorded")->integer(), 17);
  const net::Json* steps = doc.Find("steps");
  ASSERT_NE(steps, nullptr);
  ASSERT_EQ(steps->items().size(), 2u);
  const net::Json& s0 = steps->items()[0];
  EXPECT_EQ(s0.Find("step")->integer(), 0);
  EXPECT_EQ(s0.Find("active_rows")->integer(), 1);
  EXPECT_EQ(s0.Find("ok"), nullptr) << "ok elided when true";
  ASSERT_EQ(s0.Find("events")->items().size(), 1u);
  EXPECT_EQ(s0.Find("events")->items()[0].Find("kind")->str(), "splice");
  EXPECT_EQ(s0.Find("events")->items()[0].Find("request")->integer(), 5);
  EXPECT_EQ(s0.Find("vm")->Find("kernel_us")->integer(), 9);
  const net::Json& s1 = steps->items()[1];
  ASSERT_NE(s1.Find("ok"), nullptr);
  EXPECT_FALSE(s1.Find("ok")->boolean());
  EXPECT_EQ(s1.Find("events")->items()[0].Find("kind")->str(), "retire");
}

TEST(StepJournal, SlotTimelinesRenderPerSlotTracksAndCounters) {
  // Two slots: request 1 occupies slot 0 for steps 0..1, request 2 slot 1
  // for step 1 only and is still live at the window's end (clamped).
  obs::SlotTimeline timeline;
  timeline.model = "m";
  timeline.num_slots = 2;
  obs::StepRecord r0 = MakeStep(0, 1, 2);
  r0.events.push_back(obs::StepEvent{obs::StepEvent::Kind::kSplice, 1, 0, 2});
  obs::StepRecord r1 = MakeStep(1, 2, 2);
  r1.events.push_back(obs::StepEvent{obs::StepEvent::Kind::kSplice, 2, 1, 9});
  r1.events.push_back(obs::StepEvent{obs::StepEvent::Kind::kRetire, 1, 0, 2});
  timeline.records = {r0, r1};

  std::string json = obs::ChromeTraceJson({}, {timeline});
  std::string parse_error;
  net::Json doc = net::Json::Parse(json, &parse_error);
  ASSERT_TRUE(doc.is_object()) << parse_error << "\n" << json;
  const net::Json* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);

  bool saw_process_name = false, saw_slot0_thread = false;
  size_t tenancies = 0, occupancy_samples = 0, latency_samples = 0;
  for (const net::Json& event : events->items()) {
    const std::string& name = event.Find("name")->str();
    const std::string& ph = event.Find("ph")->str();
    if (ph == "M" && name == "process_name") {
      saw_process_name = true;
      EXPECT_EQ(event.Find("args")->Find("name")->str(), "slots:m");
      EXPECT_GE(event.Find("pid")->integer(), 2) << "pid 1 is requests";
    }
    if (ph == "M" && name == "thread_name" &&
        event.Find("tid")->integer() == 0) {
      saw_slot0_thread = true;
      EXPECT_EQ(event.Find("args")->Find("name")->str(), "slot 0");
    }
    if (ph == "X") {
      tenancies++;
      EXPECT_EQ(name.compare(0, 4, "req "), 0) << name;
      EXPECT_GE(event.Find("dur")->number(), 0.0);
    }
    if (ph == "C" && name == "occupancy") occupancy_samples++;
    if (ph == "C" && name == "step_latency_us") latency_samples++;
  }
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(saw_slot0_thread);
  EXPECT_EQ(tenancies, 2u)
      << "one closed tenancy plus one clamped to the window end";
  EXPECT_EQ(occupancy_samples, 2u) << "one occupancy sample per step";
  EXPECT_EQ(latency_samples, 2u);
}

// ---- VM profiling (the EnableProfiling wiring) --------------------------------

std::shared_ptr<vm::Executable> BuildSmallLSTM(bool batched = false) {
  models::LSTMConfig config;
  config.input_size = 8;
  config.hidden_size = 12;
  config.emit_batched = batched;
  models::LSTMModel model = models::BuildLSTM(config);
  core::CompileOptions opts;
  if (batched) opts.batched_entries = {model.batched_spec};
  return core::Compile(model.module, opts).executable;
}

TEST(Obs, VMProfileAccumulatesWhenEnabledAndResetClears) {
  auto exec = BuildSmallLSTM();
  vm::VirtualMachine vm(exec);
  support::Rng rng(11);
  NDArray x = models::RandomSequence(6, 8, rng);

  vm.EnableProfiling(true);
  vm.Invoke("main", {MakeTensor(x), MakeTensor(NDArray::Scalar<int64_t>(6))});
  EXPECT_GT(vm.profile().instructions, 0);
  EXPECT_GT(vm.profile().total_nanos, 0);
  EXPECT_GT(vm.profile().kernel_nanos, 0);

  // Reset() must clear the profile, so one batch never inherits its
  // predecessor's nanos (the pool calls Reset between batches).
  vm.Reset();
  EXPECT_EQ(vm.profile().instructions, 0);
  EXPECT_EQ(vm.profile().total_nanos, 0);
  EXPECT_EQ(vm.profile().kernel_nanos, 0);

  // Profiling off: instructions still run, nothing accumulates.
  vm.EnableProfiling(false);
  vm.Invoke("main", {MakeTensor(x), MakeTensor(NDArray::Scalar<int64_t>(6))});
  EXPECT_EQ(vm.profile().instructions, 0);
}

// ---- end-to-end lifecycle -----------------------------------------------------

TEST(Obs, ServedRequestYieldsOrderedTraceWithExecProfile) {
  auto exec = BuildSmallLSTM(/*batched=*/true);
  serve::ServeConfig config;
  config.num_workers = 2;
  config.batch.max_batch_size = 4;
  config.batch.max_wait_micros = 500;
  config.batch.tensor_batching = true;
  serve::Server server(exec, config);

  support::Rng rng(5);
  constexpr int kRequests = 8;
  std::vector<std::future<runtime::ObjectRef>> futures;
  for (int i = 0; i < kRequests; ++i) {
    int64_t len = 3 + (i * 7) % 11;
    NDArray x = models::RandomSequence(len, 8, rng);
    futures.push_back(server.Submit(
        {MakeTensor(x), MakeTensor(NDArray::Scalar<int64_t>(len))}, len));
  }
  for (auto& future : futures) future.get();
  server.Drain();

  obs::Tracer& tracer = *server.tracer();
  EXPECT_EQ(tracer.committed(), kRequests)
      << "every completed request commits exactly one trace";
  std::vector<obs::TraceRecord> records = tracer.Recent(kRequests);
  ASSERT_EQ(records.size(), static_cast<size_t>(kRequests));
  std::set<int64_t> ids;
  for (const obs::TraceRecord& record : records) {
    const obs::TraceContext& ctx = record.ctx;
    EXPECT_TRUE(ctx.ok);
    EXPECT_EQ(ctx.model, "default");
    ids.insert(ctx.id);
    std::vector<obs::SpanView> spans = obs::TraceSpans(ctx);
    ASSERT_EQ(spans.size(), 6u);
    for (size_t i = 0; i < spans.size(); ++i) {
      EXPECT_LE(spans[i].begin, spans[i].end) << spans[i].name;
      if (i > 0) EXPECT_EQ(spans[i].begin, spans[i - 1].end);
    }
    EXPECT_GT(ctx.e2e_us(), 0);
    EXPECT_GT(spans[3].duration_us() + spans[1].duration_us(), 0)
        << "queue + exec dominate a real request";
    EXPECT_GT(ctx.vm.instructions, 0)
        << "tracing must enable VM profiling on the worker";
    EXPECT_GE(ctx.vm.kernel_nanos, 0);
  }
  EXPECT_EQ(ids.size(), static_cast<size_t>(kRequests))
      << "distinct requests, distinct trace ids";
}

TEST(Obs, TracingOffServesWithoutCommittingTraces) {
  auto exec = BuildSmallLSTM();
  serve::ServeConfig config;
  config.num_workers = 1;
  config.trace.enabled = false;
  serve::Server server(exec, config);

  support::Rng rng(6);
  NDArray x = models::RandomSequence(5, 8, rng);
  server.Submit({MakeTensor(x), MakeTensor(NDArray::Scalar<int64_t>(5))}, 5)
      .get();
  server.Drain();
  EXPECT_EQ(server.tracer()->committed(), 0);
  EXPECT_EQ(server.stats().completed, 1);
}

// ---- metrics through the server -----------------------------------------------

TEST(Obs, ServerMetricsCountersMatchServeStats) {
  auto exec = BuildSmallLSTM();
  serve::ServeConfig config;
  config.num_workers = 1;
  serve::Server server(exec, config);

  support::Rng rng(8);
  constexpr int kRequests = 5;
  std::vector<std::future<runtime::ObjectRef>> futures;
  for (int i = 0; i < kRequests; ++i) {
    NDArray x = models::RandomSequence(4, 8, rng);
    futures.push_back(server.Submit(
        {MakeTensor(x), MakeTensor(NDArray::Scalar<int64_t>(4))}, 4));
  }
  for (auto& future : futures) future.get();
  server.Drain();

  obs::MetricRegistry& registry = *server.metrics_registry();
  EXPECT_EQ(registry
                .GetCounter("nimble_requests_total",
                            {{"model", "default"}, {"outcome", "completed"}})
                ->Value(),
            kRequests);
  EXPECT_EQ(registry
                .GetCounter("nimble_arrivals_total", {{"model", "default"}})
                ->Value(),
            kRequests);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("nimble_requests_total{model=\"default\","
                      "outcome=\"completed\"} 5"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE nimble_e2e_latency_us histogram"),
            std::string::npos);
}

// ---- memory observability -----------------------------------------------------

// The global copy ledger is process-lifetime (tests share it), so every
// assertion here is on before/after deltas, never absolute values.
int64_t LedgerBytes(obs::CopySite site) {
  for (const obs::CopySiteSnapshot& s : obs::CopyLedgerSnapshot()) {
    if (s.site == std::string(obs::CopySiteName(site))) return s.bytes;
  }
  ADD_FAILURE() << "site missing from snapshot";
  return 0;
}

TEST(Memory, CopyLedgerMergesAcrossThreadsAndTagsSites) {
  int64_t pack_before = LedgerBytes(obs::CopySite::kPack);
  int64_t unpack_before = LedgerBytes(obs::CopySite::kUnpack);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::RecordCopy(obs::CopySite::kPack, 3);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(LedgerBytes(obs::CopySite::kPack) - pack_before,
            int64_t{3} * kThreads * kPerThread)
      << "merged shards must equal the sum of every thread's adds";
  EXPECT_EQ(LedgerBytes(obs::CopySite::kUnpack), unpack_before)
      << "records must land on their own site only";
}

TEST(Memory, KillSwitchStopsLedgerRecording) {
  int64_t before = LedgerBytes(obs::CopySite::kSerialize);
  obs::SetMemoryTelemetryEnabled(false);
  obs::RecordCopy(obs::CopySite::kSerialize, 1 << 20);
  obs::RecordPoolEvent(obs::PoolEvent::kHit, 1000);
  obs::SetMemoryTelemetryEnabled(true);
  EXPECT_EQ(LedgerBytes(obs::CopySite::kSerialize), before);
  obs::RecordCopy(obs::CopySite::kSerialize, 7);
  EXPECT_EQ(LedgerBytes(obs::CopySite::kSerialize), before + 7)
      << "re-enabling must restore recording";
}

TEST(Memory, AllocatorTracksLivePeakAndPoolCounters) {
  runtime::PoolingAllocator alloc;
  auto stats0 = alloc.stats();
  EXPECT_EQ(stats0.live_bytes, 0);

  auto a = alloc.Alloc(1000, 64, runtime::Device::CPU());
  auto b = alloc.Alloc(5000, 64, runtime::Device::CPU());
  auto mid = alloc.stats();
  EXPECT_EQ(mid.alloc_calls, 2);
  EXPECT_EQ(mid.system_allocs, 2) << "cold pool: every alloc misses";
  EXPECT_GE(mid.live_bytes, 6000) << "bucket rounding may only add";
  EXPECT_EQ(mid.peak_bytes, mid.live_bytes);
  int64_t peak_at_two = mid.peak_bytes;

  a.reset();  // refills the pool
  b.reset();
  auto drained = alloc.stats();
  EXPECT_EQ(drained.live_bytes, 0) << "every byte freed must leave live";
  EXPECT_EQ(drained.peak_bytes, peak_at_two) << "peak is a high-water mark";
  EXPECT_EQ(drained.free_calls, 2);
  EXPECT_EQ(drained.bytes_freed, drained.bytes_allocated);
  EXPECT_EQ(drained.pool_refills, 2);

  // Same sizes again: served from the free lists, and the class table
  // shows the cached blocks while they are free, not while they are out.
  auto c = alloc.Alloc(1000, 64, runtime::Device::CPU());
  auto after_hit = alloc.stats();
  EXPECT_EQ(after_hit.pool_hits, 1);
  EXPECT_EQ(after_hit.system_allocs, 2) << "no new OS allocation";
  std::vector<obs::PoolClassOccupancy> classes = alloc.PoolClasses();
  int64_t cached_blocks = 0;
  for (const obs::PoolClassOccupancy& cls : classes) {
    EXPECT_EQ(cls.bytes, cls.bucket_bytes * cls.blocks);
    cached_blocks += cls.blocks;
  }
  EXPECT_EQ(cached_blocks, 1) << "one block cached (the 5000-byte class)";

  // ResetStats zeroes the counter view and the live/peak pair.
  c.reset();
  alloc.ResetStats();
  auto reset = alloc.stats();
  EXPECT_EQ(reset.alloc_calls, 0);
  EXPECT_EQ(reset.live_bytes, 0);
  EXPECT_EQ(reset.peak_bytes, 0);
}

TEST(Memory, ConcurrentAllocatorsAndScrapersStayConsistent) {
  runtime::PoolingAllocator alloc;
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&alloc] {
      for (int i = 0; i < 3000; ++i) {
        auto buf = alloc.Alloc(256 + 64 * (i % 7), 64,
                               runtime::Device::CPU());
        obs::RecordCopy(obs::CopySite::kStepState, 64);
      }
    });
  }
  std::thread scraper([&] {
    while (!stop.load()) {
      auto stats = alloc.stats();
      EXPECT_GE(stats.live_bytes, 0);
      EXPECT_GE(stats.peak_bytes, stats.live_bytes);
      alloc.PoolClasses();
      obs::CopyLedgerSnapshot();
      obs::PoolEventsSnapshot();
    }
  });
  for (auto& t : writers) t.join();
  stop = true;
  scraper.join();
  auto end = alloc.stats();
  EXPECT_EQ(end.alloc_calls, kWriters * 3000);
  EXPECT_EQ(end.live_bytes, 0);
  EXPECT_EQ(end.bytes_freed, end.bytes_allocated);
}

TEST(Memory, PressureCheckOnceTripsAndClears) {
  obs::Gauge gauge;
  std::atomic<int64_t> live{0};
  obs::MemoryPressureConfig config;
  config.soft_limit_bytes = 1000;
  config.shed_threshold = 1.0;
  obs::MemoryPressure pressure(
      config, [&live] { return live.load(); }, &gauge);
  EXPECT_EQ(pressure.pressure(), 0.0) << "no poll yet";
  EXPECT_FALSE(pressure.should_shed());

  auto t0 = obs::SteadyClock::now();
  live = 500;
  EXPECT_DOUBLE_EQ(pressure.CheckOnce(t0), 0.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.5);
  EXPECT_FALSE(pressure.should_shed());

  live = 2000;
  EXPECT_DOUBLE_EQ(pressure.CheckOnce(t0 + std::chrono::seconds(1)), 2.0);
  EXPECT_TRUE(pressure.should_shed()) << "over the limit must shed";

  live = 100;
  EXPECT_DOUBLE_EQ(pressure.CheckOnce(t0 + std::chrono::seconds(2)), 0.1);
  EXPECT_FALSE(pressure.should_shed()) << "pressure clears when live drops";
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.1);
}

TEST(Memory, DebugMemoryJsonIsValidAndMetricsCarryFamilies) {
  auto exec = BuildSmallLSTM();
  serve::ServeConfig config;
  config.num_workers = 1;
  serve::Server server(exec, config);
  net::InferenceHandler handler(&server);

  support::Rng rng(21);
  NDArray x = models::RandomSequence(4, 8, rng);
  server.Submit({MakeTensor(x), MakeTensor(NDArray::Scalar<int64_t>(4))}, 4)
      .get();
  server.Drain();

  std::string body = handler.MemoryJson(/*n=*/256).Dump();
  std::string error;
  net::Json doc = net::Json::Parse(body, &error);
  ASSERT_TRUE(doc.is_object()) << error;
  ASSERT_NE(doc.Find("scopes"), nullptr);
  // worker:0 plus the two global scopes (no continuous model here).
  EXPECT_EQ(doc.Find("scopes")->items().size(), 3u);
  std::set<std::string> scope_names;
  for (const net::Json& scope : doc.Find("scopes")->items()) {
    scope_names.insert(scope.Find("scope")->str());
    EXPECT_GE(scope.Find("bytes_allocated")->integer(), 0);
    EXPECT_GE(scope.Find("peak_bytes")->integer(),
              scope.Find("live_bytes")->integer());
    EXPECT_TRUE(scope.Find("classes")->is_array());
  }
  EXPECT_TRUE(scope_names.count("worker:0"));
  EXPECT_TRUE(scope_names.count("global:pool"));
  EXPECT_TRUE(scope_names.count("global:naive"));
  const net::Json* sites = doc.Find("copy_sites");
  ASSERT_NE(sites, nullptr);
  EXPECT_EQ(sites->items().size(), obs::kNumCopySites)
      << "the full closed taxonomy, zeros included";
  ASSERT_NE(doc.Find("pressure"), nullptr);
  EXPECT_FALSE(doc.Find("pressure")->Find("configured")->boolean())
      << "no soft limit configured in this server";

  // ?n= caps the per-scope class tables.
  net::Json capped = net::Json::Parse(handler.MemoryJson(/*n=*/1).Dump());
  for (const net::Json& scope : capped.Find("scopes")->items()) {
    EXPECT_LE(scope.Find("classes")->items().size(), 1u);
  }

  // The route itself answers 200 with the same document shape.
  net::HttpRequest request;
  request.method = "GET";
  request.target = "/debug/memory?n=8";
  net::InferenceHandler::Outcome outcome =
      handler.Handle(request, [](std::string) {});
  EXPECT_FALSE(outcome.async);
  EXPECT_NE(outcome.response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(outcome.response.find("\"copy_sites\""), std::string::npos);

  // /metrics exports all five families in one valid exposition.
  std::string metrics = handler.MetricsText();
  for (const char* needle :
       {"# TYPE nimble_mem_live_bytes gauge",
        "# TYPE nimble_mem_peak_bytes gauge",
        "# TYPE nimble_mem_pressure gauge",
        "# TYPE nimble_pool_events_total counter",
        "# TYPE nimble_copied_bytes_total counter",
        "nimble_mem_live_bytes{scope=\"total\"}",
        "nimble_pool_events_total{event=\"hit\"}",
        "nimble_copied_bytes_total{site=\"serialize\"}"}) {
    EXPECT_NE(metrics.find(needle), std::string::npos) << needle;
  }
  // /stats carries the memory digest.
  net::Json stats = handler.StatsJson();
  const net::Json* memory = stats.Find("memory");
  ASSERT_NE(memory, nullptr);
  EXPECT_GE(memory->Find("peak_bytes")->integer(), 0);
  ASSERT_NE(memory->Find("copied_bytes"), nullptr);
  EXPECT_NE(memory->Find("copied_bytes")->Find("step_state"), nullptr);
}

}  // namespace
}  // namespace nimble
