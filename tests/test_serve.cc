// Serving subsystem tests: bounded-queue backpressure, length bucketing,
// percentile math, and — the load-bearing property — that concurrent
// serving through the VM pool produces results bit-identical to sequential
// VirtualMachine::Invoke.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "src/core/compiler.h"
#include "src/models/lstm.h"
#include "src/models/workloads.h"
#include "src/serve/batch_scheduler.h"
#include "src/serve/request_queue.h"
#include "src/serve/server.h"
#include "src/serve/stats.h"
#include "src/serve/vm_pool.h"
#include "src/vm/vm.h"

namespace nimble {
namespace {

using runtime::AsTensor;
using runtime::MakeTensor;
using runtime::NDArray;

// ---- length buckets -----------------------------------------------------------

TEST(BatchPolicy, BucketOfRespectsInclusiveEdges) {
  serve::BatchPolicy policy;
  policy.bucket_edges = {8, 16, 32};
  EXPECT_EQ(policy.num_buckets(), 4);
  EXPECT_EQ(policy.BucketOf(0), 0);
  EXPECT_EQ(policy.BucketOf(8), 0);
  EXPECT_EQ(policy.BucketOf(9), 1);
  EXPECT_EQ(policy.BucketOf(16), 1);
  EXPECT_EQ(policy.BucketOf(17), 2);
  EXPECT_EQ(policy.BucketOf(32), 2);
  EXPECT_EQ(policy.BucketOf(33), 3) << "overflow bucket";
  EXPECT_EQ(policy.BucketOf(100000), 3);
}

// ---- bounded queue / backpressure ---------------------------------------------

serve::Request MakeDummyRequest(int64_t id) {
  serve::Request request;
  request.id = id;
  request.enqueue_time = serve::Clock::now();
  return request;
}

TEST(RequestQueue, TryPushFailsWhenFull) {
  serve::RequestQueue queue(2);
  auto r0 = MakeDummyRequest(0), r1 = MakeDummyRequest(1),
       r2 = MakeDummyRequest(2);
  EXPECT_TRUE(queue.TryPush(r0));
  EXPECT_TRUE(queue.TryPush(r1));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_FALSE(queue.TryPush(r2)) << "backpressure at capacity";
  EXPECT_EQ(r2.id, 2) << "rejected request must be left intact";

  auto popped = queue.Pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->id, 0) << "FIFO order";
  EXPECT_TRUE(queue.TryPush(r2)) << "space freed by Pop re-admits";
}

TEST(RequestQueue, BlockingPushWaitsForSpace) {
  serve::RequestQueue queue(1);
  auto r0 = MakeDummyRequest(0);
  ASSERT_TRUE(queue.TryPush(r0));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    auto r1 = MakeDummyRequest(1);
    queue.Push(r1);  // blocks until the consumer pops
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed) << "Push must block while the queue is full";
  auto popped = queue.Pop();
  ASSERT_TRUE(popped.has_value());
  producer.join();
  EXPECT_TRUE(pushed);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(RequestQueue, CloseDrainsThenEndsStream) {
  serve::RequestQueue queue(4);
  auto r0 = MakeDummyRequest(0), r1 = MakeDummyRequest(1);
  ASSERT_TRUE(queue.TryPush(r0));
  ASSERT_TRUE(queue.TryPush(r1));
  queue.Close();
  auto r2 = MakeDummyRequest(2);
  EXPECT_FALSE(queue.TryPush(r2)) << "no admissions after Close";
  EXPECT_TRUE(queue.Pop().has_value()) << "pending items still drain";
  EXPECT_TRUE(queue.Pop().has_value());
  EXPECT_FALSE(queue.Pop().has_value()) << "closed + drained = end of stream";
}

TEST(RequestQueue, PopUntilTimesOut) {
  serve::RequestQueue queue(1);
  auto popped = queue.PopUntil(serve::Clock::now() +
                               std::chrono::milliseconds(10));
  EXPECT_FALSE(popped.has_value());
  EXPECT_FALSE(queue.closed());
}

// ---- percentiles --------------------------------------------------------------

TEST(ServeStats, NearestRankPercentiles) {
  std::vector<double> sample;
  for (int i = 1; i <= 100; ++i) sample.push_back(static_cast<double>(i));
  EXPECT_EQ(serve::ServeStats::Percentile(sample, 50.0), 50.0);
  EXPECT_EQ(serve::ServeStats::Percentile(sample, 95.0), 95.0);
  EXPECT_EQ(serve::ServeStats::Percentile(sample, 99.0), 99.0);
  EXPECT_EQ(serve::ServeStats::Percentile(sample, 0.0), 1.0);
  EXPECT_EQ(serve::ServeStats::Percentile(sample, 100.0), 100.0);
  EXPECT_EQ(serve::ServeStats::Percentile({42.0}, 99.0), 42.0);
  EXPECT_EQ(serve::ServeStats::Percentile({}, 50.0), 0.0);
  // Unsorted input is sorted internally.
  EXPECT_EQ(serve::ServeStats::Percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

// ---- end-to-end serving -------------------------------------------------------

struct LSTMFixture {
  models::LSTMModel model;
  std::shared_ptr<vm::Executable> exec;
  std::vector<NDArray> inputs;
  std::vector<int64_t> lengths;
  std::vector<NDArray> expected;  // sequential single-VM results

  explicit LSTMFixture(int num_requests, int hidden_size = 12,
                       uint64_t seed = 7) {
    models::LSTMConfig config;
    config.input_size = 8;
    config.hidden_size = hidden_size;
    model = models::BuildLSTM(config);
    ir::Module mod = model.module;
    exec = core::Compile(mod).executable;

    support::Rng rng(seed);
    lengths = models::SampleMRPCLengths(num_requests, rng, 48);
    vm::VirtualMachine sequential(exec);
    for (int64_t len : lengths) {
      NDArray x = models::RandomSequence(len, config.input_size, rng);
      inputs.push_back(x);
      auto out = sequential.Invoke(
          "main", {MakeTensor(x), MakeTensor(NDArray::Scalar<int64_t>(len))});
      expected.push_back(AsTensor(out));
    }
  }

  std::vector<runtime::ObjectRef> ArgsFor(size_t i) const {
    return {MakeTensor(inputs[i]),
            MakeTensor(NDArray::Scalar<int64_t>(lengths[i]))};
  }
};

void ExpectBitIdentical(const NDArray& got, const NDArray& want, size_t i) {
  ASSERT_EQ(got.shape(), want.shape()) << "request " << i;
  const float* pg = got.data<float>();
  const float* pw = want.data<float>();
  for (int64_t j = 0; j < got.num_elements(); ++j) {
    ASSERT_EQ(pg[j], pw[j]) << "request " << i << " flat index " << j;
  }
}

TEST(Serve, ConcurrentClientsMatchSequentialBitIdentical) {
  const int kRequests = 48;
  const int kClients = 4;
  LSTMFixture fixture(kRequests);

  serve::ServeConfig config;
  config.num_workers = 4;
  config.queue_capacity = 16;
  config.batch.max_batch_size = 4;
  config.batch.max_wait_micros = 500;
  serve::Server server(fixture.exec, config);

  // Many client threads submit interleaved slices of the workload.
  std::vector<std::future<runtime::ObjectRef>> futures(kRequests);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = static_cast<size_t>(c); i < kRequests; i += kClients) {
        futures[i] =
            server.Submit(fixture.ArgsFor(i), fixture.lengths[i]);
      }
    });
  }
  for (auto& t : clients) t.join();
  for (size_t i = 0; i < futures.size(); ++i) {
    ExpectBitIdentical(AsTensor(futures[i].get()), fixture.expected[i], i);
  }
  server.Shutdown();

  auto snap = server.stats();
  EXPECT_EQ(snap.completed, kRequests);
  EXPECT_EQ(snap.failed, 0);
  EXPECT_GT(snap.batches, 0);
  EXPECT_GT(snap.throughput_rps, 0.0);
  EXPECT_GE(snap.p99_latency_us, snap.p50_latency_us);
}

TEST(Serve, BucketedBatchingPreservesPerRequestOutputs) {
  const int kRequests = 32;
  LSTMFixture fixture(kRequests);

  serve::ServeConfig config;
  config.num_workers = 2;
  config.batch.max_batch_size = 8;
  // Generous wait so batches actually fill and bucketing is exercised.
  config.batch.max_wait_micros = 50000;
  config.batch.bucket_edges = {8, 16, 32};
  serve::Server server(fixture.exec, config);

  std::vector<std::future<runtime::ObjectRef>> futures;
  futures.reserve(kRequests);
  for (size_t i = 0; i < kRequests; ++i) {
    futures.push_back(server.Submit(fixture.ArgsFor(i), fixture.lengths[i]));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    ExpectBitIdentical(AsTensor(futures[i].get()), fixture.expected[i], i);
  }
  server.Shutdown();

  auto snap = server.stats();
  EXPECT_EQ(snap.completed, kRequests);
  EXPECT_GT(snap.mean_batch_size, 1.0)
      << "with a long max_wait, multi-request batches must form";
  EXPECT_LT(snap.batches, kRequests);
}

TEST(Serve, ShutdownFulfillsEveryOutstandingFuture) {
  LSTMFixture fixture(8);
  serve::ServeConfig config;
  config.num_workers = 2;
  config.batch.max_wait_micros = 100000;  // rely on shutdown flush, not timer
  serve::Server server(fixture.exec, config);
  std::vector<std::future<runtime::ObjectRef>> futures;
  for (size_t i = 0; i < 8; ++i) {
    futures.push_back(server.Submit(fixture.ArgsFor(i), fixture.lengths[i]));
  }
  server.Shutdown();  // must flush incomplete buckets before returning
  for (size_t i = 0; i < futures.size(); ++i) {
    ExpectBitIdentical(AsTensor(futures[i].get()), fixture.expected[i], i);
  }
  EXPECT_THROW(server.Submit(fixture.ArgsFor(0), fixture.lengths[0]), Error);
}

TEST(Serve, TrySubmitShedsLoadAndCountsRejections) {
  LSTMFixture fixture(4);
  serve::ServeConfig config;
  config.num_workers = 1;
  config.queue_capacity = 1;
  serve::Server server(fixture.exec, config);

  // Saturate: with a capacity-1 queue, offered load beyond what one worker
  // drains instantly must eventually bounce.
  int accepted = 0, rejected = 0;
  std::vector<std::future<runtime::ObjectRef>> futures;
  for (int round = 0; round < 200 && rejected == 0; ++round) {
    for (size_t i = 0; i < 4; ++i) {
      auto f = server.TrySubmit(fixture.ArgsFor(i), fixture.lengths[i]);
      if (f.has_value()) {
        accepted++;
        futures.push_back(std::move(*f));
      } else {
        rejected++;
      }
    }
  }
  EXPECT_GT(rejected, 0) << "a full queue must shed load";
  for (auto& f : futures) f.get();
  server.Shutdown();
  auto snap = server.stats();
  EXPECT_EQ(snap.completed, accepted);
  EXPECT_EQ(snap.rejected, rejected);
}

TEST(Serve, VMPoolRunsBatchesDirectly) {
  // Pool-level check without scheduler/queue: a directly submitted batch
  // (carrying its own executable) executes every request and fulfills its
  // promises.
  LSTMFixture fixture(6);
  serve::ServeStats stats;
  serve::VMPool pool(3, &stats);
  std::vector<std::future<runtime::ObjectRef>> futures;
  serve::Batch batch;
  batch.exec = fixture.exec;
  for (size_t i = 0; i < 6; ++i) {
    serve::Request request;
    request.id = static_cast<int64_t>(i);
    request.args = fixture.ArgsFor(i);
    request.enqueue_time = serve::Clock::now();
    futures.push_back(request.promise.get_future());
    batch.requests.push_back(std::move(request));
  }
  pool.Submit(std::move(batch));
  for (size_t i = 0; i < futures.size(); ++i) {
    ExpectBitIdentical(AsTensor(futures[i].get()), fixture.expected[i], i);
  }
  pool.Close();
  pool.Join();
  EXPECT_EQ(pool.requests_executed(), 6);
}

TEST(Serve, ResultsOutliveServerAndPool) {
  // Result buffers come from per-worker allocators; they must stay valid —
  // and safely freeable — after the server and its pool are destroyed.
  LSTMFixture fixture(1);
  runtime::ObjectRef out;
  {
    serve::Server server(fixture.exec);
    out = server.Submit(fixture.ArgsFor(0), fixture.lengths[0]).get();
  }  // server, scheduler, pool all gone
  ExpectBitIdentical(AsTensor(out), fixture.expected[0], 0);
  out = {};  // releasing the buffer now must not touch freed allocator state
}

// ---- multi-model serving ------------------------------------------------------

TEST(Serve, TwoModelsShareOnePoolWithPerModelStats) {
  // Two LSTMs with different hidden sizes (so a cross-model mixup would
  // produce wrong shapes, not just wrong values) served through one pool.
  const int kRequests = 24;
  LSTMFixture a(kRequests, /*hidden_size=*/12, /*seed=*/7);
  LSTMFixture b(kRequests, /*hidden_size=*/20, /*seed=*/31);

  serve::ServeConfig config;
  config.num_workers = 4;
  serve::Server server(config);
  serve::ModelConfig model_a;
  model_a.exec = a.exec;
  model_a.batch.max_batch_size = 4;
  model_a.batch.max_wait_micros = 500;
  serve::ModelConfig model_b;
  model_b.exec = b.exec;
  model_b.batch.max_batch_size = 4;
  model_b.batch.max_wait_micros = 500;
  server.AddModel("lstm-a", std::move(model_a));
  server.AddModel("lstm-b", std::move(model_b));
  server.Start();
  EXPECT_EQ(server.model_names(),
            (std::vector<std::string>{"lstm-a", "lstm-b"}));

  // Two client threads, one per model, submitting concurrently.
  std::vector<std::future<runtime::ObjectRef>> futures_a(kRequests);
  std::vector<std::future<runtime::ObjectRef>> futures_b(kRequests);
  std::thread client_a([&] {
    for (int i = 0; i < kRequests; ++i) {
      futures_a[i] = server.Submit("lstm-a", a.ArgsFor(i), a.lengths[i]);
    }
  });
  std::thread client_b([&] {
    for (int i = 0; i < kRequests; ++i) {
      futures_b[i] = server.Submit("lstm-b", b.ArgsFor(i), b.lengths[i]);
    }
  });
  client_a.join();
  client_b.join();
  for (int i = 0; i < kRequests; ++i) {
    ExpectBitIdentical(AsTensor(futures_a[i].get()), a.expected[i], i);
    ExpectBitIdentical(AsTensor(futures_b[i].get()), b.expected[i], i);
  }
  server.Shutdown();

  auto snap_a = server.stats("lstm-a");
  auto snap_b = server.stats("lstm-b");
  auto total = server.stats();
  EXPECT_EQ(snap_a.completed, kRequests);
  EXPECT_EQ(snap_b.completed, kRequests);
  EXPECT_EQ(snap_a.failed, 0);
  EXPECT_EQ(snap_b.failed, 0);
  EXPECT_EQ(total.completed, 2 * kRequests) << "aggregate counts each once";
  EXPECT_GT(snap_a.batches, 0);
  EXPECT_GT(snap_b.batches, 0);
  EXPECT_THROW(server.stats("no-such-model"), Error);
}

TEST(Serve, CompileWhileServingKeepsResultsBitIdentical) {
  // The race PR 2 fixes: dispatch state lives in each executable, so
  // compiling model B (with any dispatch configuration) while model A
  // serves must not perturb A's results — before the refactor, Compile
  // rewrote the process-global dispatch table mid-flight.
  const int kRequests = 48;
  LSTMFixture fixture(kRequests);
  ASSERT_EQ(fixture.exec->dispatch_table.num_variants(), 8);

  serve::ServeConfig config;
  config.num_workers = 2;
  config.batch.max_batch_size = 4;
  config.batch.max_wait_micros = 500;
  serve::Server server(fixture.exec, config);

  std::atomic<bool> stop{false};
  std::thread compiler_thread([&] {
    models::LSTMConfig other;
    other.input_size = 4;
    other.hidden_size = 6;
    int variants[] = {1, 2, 4, 8};
    for (int round = 0; !stop; ++round) {
      ir::Module mod = models::BuildLSTM(other).module;
      core::CompileOptions opts;
      opts.dense_dispatch_variants = variants[round % 4];
      auto exec = core::Compile(mod, opts).executable;
      ASSERT_EQ(exec->dispatch_table.num_variants(), variants[round % 4]);
    }
  });

  std::vector<std::future<runtime::ObjectRef>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(server.Submit(fixture.ArgsFor(i), fixture.lengths[i]));
  }
  for (int i = 0; i < kRequests; ++i) {
    ExpectBitIdentical(AsTensor(futures[i].get()), fixture.expected[i], i);
  }
  stop = true;
  compiler_thread.join();
  server.Shutdown();

  EXPECT_EQ(fixture.exec->dispatch_table.num_variants(), 8)
      << "serving executable's dispatch config must survive foreign compiles";
  EXPECT_EQ(server.stats().completed, kRequests);
  EXPECT_EQ(server.stats().failed, 0);
}

TEST(Serve, SkewedArrivalsDontStarveTheLightModel) {
  // Fairness: a model flooding its queue must not crowd out a light one.
  // With one worker and DRR scheduling, the light model's batches interleave
  // with the flood instead of queueing behind all of it.
  const int kFlood = 96;
  const int kTrickle = 8;
  LSTMFixture heavy(kFlood, /*hidden_size=*/12, /*seed=*/7);
  LSTMFixture light(kTrickle, /*hidden_size=*/12, /*seed=*/13);

  serve::ServeConfig config;
  config.num_workers = 1;  // a single worker makes dispatch order observable
  serve::Server server(config);
  serve::ModelConfig model;
  model.batch.max_batch_size = 4;
  model.batch.max_wait_micros = 200000;  // full buckets only: pure DRR order
  model.queue_capacity = 256;
  model.exec = heavy.exec;
  server.AddModel("flood", model);
  model.exec = light.exec;
  server.AddModel("trickle", std::move(model));
  server.Start();

  // The flood is fully enqueued before the trickle arrives — the worst case
  // for the light model under FIFO scheduling.
  std::vector<std::future<runtime::ObjectRef>> flood_futures;
  for (int i = 0; i < kFlood; ++i) {
    flood_futures.push_back(
        server.Submit("flood", heavy.ArgsFor(i), heavy.lengths[i]));
  }
  // Constant length hint: all trickle requests land in one bucket, so they
  // form full batches that must go through DRR dispatch (not expiry).
  std::vector<std::future<runtime::ObjectRef>> trickle_futures;
  for (int i = 0; i < kTrickle; ++i) {
    trickle_futures.push_back(
        server.Submit("trickle", light.ArgsFor(i), /*length_hint=*/10));
  }
  for (int i = 0; i < kTrickle; ++i) {
    ExpectBitIdentical(AsTensor(trickle_futures[i].get()), light.expected[i],
                       i);
  }
  // The moment the trickle finished, most of the flood must still be
  // outstanding: under starvation-free DRR the trickle's 2 batches ride
  // alongside ~2 flood batches per round (+ the pool's small buffer), while
  // FIFO would have completed all 96 flood requests first.
  auto flood_mid = server.stats("flood");
  EXPECT_LT(flood_mid.completed, kFlood / 2)
      << "light model waited out the flood: no fairness";

  for (int i = 0; i < kFlood; ++i) {
    ExpectBitIdentical(AsTensor(flood_futures[i].get()), heavy.expected[i], i);
  }
  server.Shutdown();
  EXPECT_EQ(server.stats("flood").completed, kFlood);
  EXPECT_EQ(server.stats("trickle").completed, kTrickle);
  EXPECT_EQ(server.stats().completed, kFlood + kTrickle);
}

TEST(Serve, VMResetAllowsRecycling) {
  LSTMFixture fixture(2);
  vm::VirtualMachine machine(fixture.exec);
  machine.EnableProfiling(true);
  auto a = AsTensor(machine.Invoke("main", fixture.ArgsFor(0)));
  ExpectBitIdentical(a, fixture.expected[0], 0);
  EXPECT_GT(machine.profile().instructions, 0);
  machine.Reset();
  EXPECT_EQ(machine.profile().instructions, 0);
  auto b = AsTensor(machine.Invoke("main", fixture.ArgsFor(1)));
  ExpectBitIdentical(b, fixture.expected[1], 1);
}

}  // namespace
}  // namespace nimble
