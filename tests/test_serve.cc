// Serving subsystem tests: bounded-queue backpressure, length bucketing,
// percentile math, and — the load-bearing property — that concurrent
// serving through the VM pool produces results bit-identical to sequential
// VirtualMachine::Invoke.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <sstream>
#include <thread>
#include <vector>

#include "src/batch/batch_runner.h"
#include "src/batch/pack_plan.h"
#include "src/codegen/tuner.h"
#include "src/core/compiler.h"
#include "src/models/lstm.h"
#include "src/models/workloads.h"
#include "src/op/registry.h"
#include "src/serve/batch_scheduler.h"
#include "src/serve/exec_cache.h"
#include "src/serve/request_queue.h"
#include "src/serve/server.h"
#include "src/serve/stats.h"
#include "src/serve/vm_pool.h"
#include "src/vm/vm.h"
#include "tests/continuous_harness.h"
#include "tests/sched_fuzz.h"

namespace nimble {
namespace {

using runtime::AsTensor;
using runtime::MakeTensor;
using runtime::NDArray;

// ---- length buckets -----------------------------------------------------------

TEST(BatchPolicy, BucketOfRespectsInclusiveEdges) {
  serve::BatchPolicy policy;
  policy.bucket_edges = {8, 16, 32};
  EXPECT_EQ(policy.num_buckets(), 4);
  EXPECT_EQ(policy.BucketOf(0), 0);
  EXPECT_EQ(policy.BucketOf(8), 0);
  EXPECT_EQ(policy.BucketOf(9), 1);
  EXPECT_EQ(policy.BucketOf(16), 1);
  EXPECT_EQ(policy.BucketOf(17), 2);
  EXPECT_EQ(policy.BucketOf(32), 2);
  EXPECT_EQ(policy.BucketOf(33), 3) << "overflow bucket";
  EXPECT_EQ(policy.BucketOf(100000), 3);
}

// ---- bounded queue / backpressure ---------------------------------------------

serve::Request MakeDummyRequest(int64_t id) {
  serve::Request request;
  request.id = id;
  request.enqueue_time = serve::Clock::now();
  return request;
}

TEST(RequestQueue, TryPushFailsWhenFull) {
  serve::RequestQueue queue(2);
  auto r0 = MakeDummyRequest(0), r1 = MakeDummyRequest(1),
       r2 = MakeDummyRequest(2);
  EXPECT_TRUE(queue.TryPush(r0));
  EXPECT_TRUE(queue.TryPush(r1));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_FALSE(queue.TryPush(r2)) << "backpressure at capacity";
  EXPECT_EQ(r2.id, 2) << "rejected request must be left intact";

  auto popped = queue.Pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->id, 0) << "FIFO order";
  EXPECT_TRUE(queue.TryPush(r2)) << "space freed by Pop re-admits";
}

TEST(RequestQueue, BlockingPushWaitsForSpace) {
  serve::RequestQueue queue(1);
  auto r0 = MakeDummyRequest(0);
  ASSERT_TRUE(queue.TryPush(r0));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    auto r1 = MakeDummyRequest(1);
    queue.Push(r1);  // blocks until the consumer pops
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed) << "Push must block while the queue is full";
  auto popped = queue.Pop();
  ASSERT_TRUE(popped.has_value());
  producer.join();
  EXPECT_TRUE(pushed);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(RequestQueue, CloseDrainsThenEndsStream) {
  serve::RequestQueue queue(4);
  auto r0 = MakeDummyRequest(0), r1 = MakeDummyRequest(1);
  ASSERT_TRUE(queue.TryPush(r0));
  ASSERT_TRUE(queue.TryPush(r1));
  queue.Close();
  auto r2 = MakeDummyRequest(2);
  EXPECT_FALSE(queue.TryPush(r2)) << "no admissions after Close";
  EXPECT_TRUE(queue.Pop().has_value()) << "pending items still drain";
  EXPECT_TRUE(queue.Pop().has_value());
  EXPECT_FALSE(queue.Pop().has_value()) << "closed + drained = end of stream";
}

TEST(RequestQueue, PopUntilTimesOut) {
  serve::RequestQueue queue(1);
  auto popped = queue.PopUntil(serve::Clock::now() +
                               std::chrono::milliseconds(10));
  EXPECT_FALSE(popped.has_value());
  EXPECT_FALSE(queue.closed());
}

// ---- percentiles --------------------------------------------------------------

TEST(ServeStats, NearestRankPercentiles) {
  std::vector<double> sample;
  for (int i = 1; i <= 100; ++i) sample.push_back(static_cast<double>(i));
  EXPECT_EQ(serve::ServeStats::Percentile(sample, 50.0), 50.0);
  EXPECT_EQ(serve::ServeStats::Percentile(sample, 95.0), 95.0);
  EXPECT_EQ(serve::ServeStats::Percentile(sample, 99.0), 99.0);
  EXPECT_EQ(serve::ServeStats::Percentile(sample, 0.0), 1.0);
  EXPECT_EQ(serve::ServeStats::Percentile(sample, 100.0), 100.0);
  EXPECT_EQ(serve::ServeStats::Percentile({42.0}, 99.0), 42.0);
  EXPECT_EQ(serve::ServeStats::Percentile({}, 50.0), 0.0);
  // Unsorted input is sorted internally.
  EXPECT_EQ(serve::ServeStats::Percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

// ---- end-to-end serving -------------------------------------------------------

struct LSTMFixture {
  models::LSTMModel model;
  std::shared_ptr<vm::Executable> exec;
  std::vector<NDArray> inputs;
  std::vector<int64_t> lengths;
  std::vector<NDArray> expected;  // sequential single-VM results

  explicit LSTMFixture(int num_requests, int hidden_size = 12,
                       uint64_t seed = 7) {
    support::Rng rng(seed);
    Init(models::SampleMRPCLengths(num_requests, rng, 48), hidden_size, seed,
         /*with_batched_entry=*/false);
  }

  /// Explicit request lengths, and optionally the tensor-batching entry
  /// (CompileOptions::batched_entries) stamped into the executable.
  LSTMFixture(std::vector<int64_t> request_lengths, int hidden_size,
              uint64_t seed, bool with_batched_entry, int num_layers = 1) {
    Init(std::move(request_lengths), hidden_size, seed, with_batched_entry,
         num_layers);
  }

  std::vector<runtime::ObjectRef> ArgsFor(size_t i) const {
    return {MakeTensor(inputs[i]),
            MakeTensor(NDArray::Scalar<int64_t>(lengths[i]))};
  }

 private:
  void Init(std::vector<int64_t> request_lengths, int hidden_size,
            uint64_t seed, bool with_batched_entry, int num_layers = 1) {
    models::LSTMConfig config;
    config.input_size = 8;
    config.hidden_size = hidden_size;
    config.num_layers = num_layers;
    config.emit_batched = with_batched_entry;
    model = models::BuildLSTM(config);
    ir::Module mod = model.module;
    core::CompileOptions opts;
    if (with_batched_entry) opts.batched_entries = {model.batched_spec};
    exec = core::Compile(mod, opts).executable;

    support::Rng rng(seed);
    lengths = std::move(request_lengths);
    vm::VirtualMachine sequential(exec);
    for (int64_t len : lengths) {
      NDArray x = models::RandomSequence(len, config.input_size, rng);
      inputs.push_back(x);
      auto out = sequential.Invoke(
          "main", {MakeTensor(x), MakeTensor(NDArray::Scalar<int64_t>(len))});
      expected.push_back(AsTensor(out));
    }
  }
};

void ExpectBitIdentical(const NDArray& got, const NDArray& want, size_t i) {
  ASSERT_EQ(got.shape(), want.shape()) << "request " << i;
  const float* pg = got.data<float>();
  const float* pw = want.data<float>();
  for (int64_t j = 0; j < got.num_elements(); ++j) {
    ASSERT_EQ(pg[j], pw[j]) << "request " << i << " flat index " << j;
  }
}

TEST(Serve, ConcurrentClientsMatchSequentialBitIdentical) {
  const int kRequests = 48;
  const int kClients = 4;
  LSTMFixture fixture(kRequests);

  serve::ServeConfig config;
  config.num_workers = 4;
  config.queue_capacity = 16;
  config.batch.max_batch_size = 4;
  config.batch.max_wait_micros = 500;
  serve::Server server(fixture.exec, config);

  // Many client threads submit interleaved slices of the workload.
  std::vector<std::future<runtime::ObjectRef>> futures(kRequests);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = static_cast<size_t>(c); i < kRequests; i += kClients) {
        futures[i] =
            server.Submit(fixture.ArgsFor(i), fixture.lengths[i]);
      }
    });
  }
  for (auto& t : clients) t.join();
  for (size_t i = 0; i < futures.size(); ++i) {
    ExpectBitIdentical(AsTensor(futures[i].get()), fixture.expected[i], i);
  }
  server.Shutdown();

  auto snap = server.stats();
  EXPECT_EQ(snap.completed, kRequests);
  EXPECT_EQ(snap.failed, 0);
  EXPECT_GT(snap.batches, 0);
  EXPECT_GT(snap.throughput_rps, 0.0);
  EXPECT_GE(snap.p99_latency_us, snap.p50_latency_us);
}

TEST(Serve, BucketedBatchingPreservesPerRequestOutputs) {
  // Lengths and arrival gaps come from the property-style schedule
  // generator (tests/sched_fuzz.h) instead of a hand-picked list: a fixed
  // seed keeps the test deterministic, and every assertion carries the
  // schedule's replay line. Bursty arrivals still let batches fill.
  auto schedule = schedfuzz::MakeSchedule(
      /*seed=*/17, /*num_requests=*/32, /*max_len=*/32,
      schedfuzz::ArrivalFlavor::kBursty);
  std::vector<int64_t> lengths;
  for (const auto& r : schedule.requests) lengths.push_back(r.length);
  LSTMFixture fixture(lengths, /*hidden_size=*/12, /*seed=*/7,
                      /*with_batched_entry=*/false);

  serve::ServeConfig config;
  config.num_workers = 2;
  config.batch.max_batch_size = 8;
  // Generous wait so batches actually fill and bucketing is exercised.
  config.batch.max_wait_micros = 50000;
  config.batch.bucket_edges = {8, 16, 32};
  serve::Server server(fixture.exec, config);

  std::vector<std::future<runtime::ObjectRef>> futures;
  futures.reserve(lengths.size());
  for (size_t i = 0; i < lengths.size(); ++i) {
    const auto& r = schedule.requests[i];
    if (r.arrival_gap_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(r.arrival_gap_us));
    }
    futures.push_back(server.Submit(fixture.ArgsFor(i), fixture.lengths[i]));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    ASSERT_NO_FATAL_FAILURE(ExpectBitIdentical(AsTensor(futures[i].get()),
                                               fixture.expected[i], i))
        << schedule.Describe();
  }
  server.Shutdown();

  auto snap = server.stats();
  EXPECT_EQ(snap.completed, static_cast<int64_t>(lengths.size()))
      << schedule.Describe();
  EXPECT_GT(snap.mean_batch_size, 1.0)
      << "with a long max_wait, multi-request batches must form "
      << schedule.Describe();
  EXPECT_LT(snap.batches, static_cast<int64_t>(lengths.size()))
      << schedule.Describe();
}

TEST(Serve, ShutdownFulfillsEveryOutstandingFuture) {
  LSTMFixture fixture(8);
  serve::ServeConfig config;
  config.num_workers = 2;
  config.batch.max_wait_micros = 100000;  // rely on shutdown flush, not timer
  serve::Server server(fixture.exec, config);
  std::vector<std::future<runtime::ObjectRef>> futures;
  for (size_t i = 0; i < 8; ++i) {
    futures.push_back(server.Submit(fixture.ArgsFor(i), fixture.lengths[i]));
  }
  server.Shutdown();  // must flush incomplete buckets before returning
  for (size_t i = 0; i < futures.size(); ++i) {
    ExpectBitIdentical(AsTensor(futures[i].get()), fixture.expected[i], i);
  }
  EXPECT_THROW(server.Submit(fixture.ArgsFor(0), fixture.lengths[0]), Error);
}

TEST(Serve, TrySubmitShedsLoadAndCountsRejections) {
  LSTMFixture fixture(4);
  serve::ServeConfig config;
  config.num_workers = 1;
  config.queue_capacity = 1;
  serve::Server server(fixture.exec, config);

  // Saturate: with a capacity-1 queue, offered load beyond what one worker
  // drains instantly must eventually bounce.
  int accepted = 0, rejected = 0;
  std::vector<std::future<runtime::ObjectRef>> futures;
  for (int round = 0; round < 200 && rejected == 0; ++round) {
    for (size_t i = 0; i < 4; ++i) {
      auto f = server.TrySubmit(fixture.ArgsFor(i), fixture.lengths[i]);
      if (f.has_value()) {
        accepted++;
        futures.push_back(std::move(*f));
      } else {
        rejected++;
      }
    }
  }
  EXPECT_GT(rejected, 0) << "a full queue must shed load";
  for (auto& f : futures) f.get();
  server.Shutdown();
  auto snap = server.stats();
  EXPECT_EQ(snap.completed, accepted);
  EXPECT_EQ(snap.rejected, rejected);
}

TEST(Serve, VMPoolRunsBatchesDirectly) {
  // Pool-level check without scheduler/queue: a directly submitted batch
  // (carrying its own executable) executes every request and fulfills its
  // promises.
  LSTMFixture fixture(6);
  serve::ServeStats stats;
  serve::VMPool pool(3, &stats);
  std::vector<std::future<runtime::ObjectRef>> futures;
  serve::Batch batch;
  batch.exec = fixture.exec;
  for (size_t i = 0; i < 6; ++i) {
    serve::Request request;
    request.id = static_cast<int64_t>(i);
    request.args = fixture.ArgsFor(i);
    request.enqueue_time = serve::Clock::now();
    futures.push_back(request.promise.get_future());
    batch.requests.push_back(std::move(request));
  }
  pool.Submit(std::move(batch));
  for (size_t i = 0; i < futures.size(); ++i) {
    ExpectBitIdentical(AsTensor(futures[i].get()), fixture.expected[i], i);
  }
  pool.Close();
  pool.Join();
  EXPECT_EQ(pool.requests_executed(), 6);
}

TEST(Serve, ResultsOutliveServerAndPool) {
  // Result buffers come from per-worker allocators; they must stay valid —
  // and safely freeable — after the server and its pool are destroyed.
  LSTMFixture fixture(1);
  runtime::ObjectRef out;
  {
    serve::Server server(fixture.exec);
    out = server.Submit(fixture.ArgsFor(0), fixture.lengths[0]).get();
  }  // server, scheduler, pool all gone
  ExpectBitIdentical(AsTensor(out), fixture.expected[0], 0);
  out = {};  // releasing the buffer now must not touch freed allocator state
}

// ---- multi-model serving ------------------------------------------------------

TEST(Serve, TwoModelsShareOnePoolWithPerModelStats) {
  // Two LSTMs with different hidden sizes (so a cross-model mixup would
  // produce wrong shapes, not just wrong values) served through one pool.
  const int kRequests = 24;
  LSTMFixture a(kRequests, /*hidden_size=*/12, /*seed=*/7);
  LSTMFixture b(kRequests, /*hidden_size=*/20, /*seed=*/31);

  serve::ServeConfig config;
  config.num_workers = 4;
  serve::Server server(config);
  serve::ModelConfig model_a;
  model_a.exec = a.exec;
  model_a.batch.max_batch_size = 4;
  model_a.batch.max_wait_micros = 500;
  serve::ModelConfig model_b;
  model_b.exec = b.exec;
  model_b.batch.max_batch_size = 4;
  model_b.batch.max_wait_micros = 500;
  server.AddModel("lstm-a", std::move(model_a));
  server.AddModel("lstm-b", std::move(model_b));
  server.Start();
  EXPECT_EQ(server.model_names(),
            (std::vector<std::string>{"lstm-a", "lstm-b"}));

  // Two client threads, one per model, submitting concurrently.
  std::vector<std::future<runtime::ObjectRef>> futures_a(kRequests);
  std::vector<std::future<runtime::ObjectRef>> futures_b(kRequests);
  std::thread client_a([&] {
    for (int i = 0; i < kRequests; ++i) {
      futures_a[i] = server.Submit("lstm-a", a.ArgsFor(i), a.lengths[i]);
    }
  });
  std::thread client_b([&] {
    for (int i = 0; i < kRequests; ++i) {
      futures_b[i] = server.Submit("lstm-b", b.ArgsFor(i), b.lengths[i]);
    }
  });
  client_a.join();
  client_b.join();
  for (int i = 0; i < kRequests; ++i) {
    ExpectBitIdentical(AsTensor(futures_a[i].get()), a.expected[i], i);
    ExpectBitIdentical(AsTensor(futures_b[i].get()), b.expected[i], i);
  }
  server.Shutdown();

  auto snap_a = server.stats("lstm-a");
  auto snap_b = server.stats("lstm-b");
  auto total = server.stats();
  EXPECT_EQ(snap_a.completed, kRequests);
  EXPECT_EQ(snap_b.completed, kRequests);
  EXPECT_EQ(snap_a.failed, 0);
  EXPECT_EQ(snap_b.failed, 0);
  EXPECT_EQ(total.completed, 2 * kRequests) << "aggregate counts each once";
  EXPECT_GT(snap_a.batches, 0);
  EXPECT_GT(snap_b.batches, 0);
  EXPECT_THROW(server.stats("no-such-model"), Error);
}

TEST(Serve, CompileWhileServingKeepsResultsBitIdentical) {
  // The race PR 2 fixes: dispatch state lives in each executable, so
  // compiling model B (with any dispatch configuration) while model A
  // serves must not perturb A's results — before the refactor, Compile
  // rewrote the process-global dispatch table mid-flight.
  const int kRequests = 48;
  LSTMFixture fixture(kRequests);
  ASSERT_EQ(fixture.exec->dispatch_table.num_variants(), 8);

  serve::ServeConfig config;
  config.num_workers = 2;
  config.batch.max_batch_size = 4;
  config.batch.max_wait_micros = 500;
  serve::Server server(fixture.exec, config);

  std::atomic<bool> stop{false};
  std::thread compiler_thread([&] {
    models::LSTMConfig other;
    other.input_size = 4;
    other.hidden_size = 6;
    int variants[] = {1, 2, 4, 8};
    for (int round = 0; !stop; ++round) {
      ir::Module mod = models::BuildLSTM(other).module;
      core::CompileOptions opts;
      opts.dense_dispatch_variants = variants[round % 4];
      auto exec = core::Compile(mod, opts).executable;
      ASSERT_EQ(exec->dispatch_table.num_variants(), variants[round % 4]);
    }
  });

  std::vector<std::future<runtime::ObjectRef>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(server.Submit(fixture.ArgsFor(i), fixture.lengths[i]));
  }
  for (int i = 0; i < kRequests; ++i) {
    ExpectBitIdentical(AsTensor(futures[i].get()), fixture.expected[i], i);
  }
  stop = true;
  compiler_thread.join();
  server.Shutdown();

  EXPECT_EQ(fixture.exec->dispatch_table.num_variants(), 8)
      << "serving executable's dispatch config must survive foreign compiles";
  EXPECT_EQ(server.stats().completed, kRequests);
  EXPECT_EQ(server.stats().failed, 0);
}

TEST(Serve, SkewedArrivalsDontStarveTheLightModel) {
  // Fairness: a model flooding its queue must not crowd out a light one.
  // With one worker and DRR scheduling, the light model's batches interleave
  // with the flood instead of queueing behind all of it.
  const int kFlood = 96;
  const int kTrickle = 8;
  LSTMFixture heavy(kFlood, /*hidden_size=*/12, /*seed=*/7);
  LSTMFixture light(kTrickle, /*hidden_size=*/12, /*seed=*/13);

  serve::ServeConfig config;
  config.num_workers = 1;  // a single worker makes dispatch order observable
  serve::Server server(config);
  serve::ModelConfig model;
  model.batch.max_batch_size = 4;
  model.batch.max_wait_micros = 200000;  // full buckets only: pure DRR order
  model.queue_capacity = 256;
  model.exec = heavy.exec;
  server.AddModel("flood", model);
  model.exec = light.exec;
  server.AddModel("trickle", std::move(model));
  server.Start();

  // The flood is fully enqueued before the trickle arrives — the worst case
  // for the light model under FIFO scheduling.
  std::vector<std::future<runtime::ObjectRef>> flood_futures;
  for (int i = 0; i < kFlood; ++i) {
    flood_futures.push_back(
        server.Submit("flood", heavy.ArgsFor(i), heavy.lengths[i]));
  }
  // Constant length hint: all trickle requests land in one bucket, so they
  // form full batches that must go through DRR dispatch (not expiry).
  std::vector<std::future<runtime::ObjectRef>> trickle_futures;
  for (int i = 0; i < kTrickle; ++i) {
    trickle_futures.push_back(
        server.Submit("trickle", light.ArgsFor(i), /*length_hint=*/10));
  }
  for (int i = 0; i < kTrickle; ++i) {
    ExpectBitIdentical(AsTensor(trickle_futures[i].get()), light.expected[i],
                       i);
  }
  // The moment the trickle finished, most of the flood must still be
  // outstanding: under starvation-free DRR the trickle's 2 batches ride
  // alongside ~2 flood batches per round (+ the pool's small buffer), while
  // FIFO would have completed all 96 flood requests first.
  auto flood_mid = server.stats("flood");
  EXPECT_LT(flood_mid.completed, kFlood / 2)
      << "light model waited out the flood: no fairness";

  for (int i = 0; i < kFlood; ++i) {
    ExpectBitIdentical(AsTensor(flood_futures[i].get()), heavy.expected[i], i);
  }
  server.Shutdown();
  EXPECT_EQ(server.stats("flood").completed, kFlood);
  EXPECT_EQ(server.stats("trickle").completed, kTrickle);
  EXPECT_EQ(server.stats().completed, kFlood + kTrickle);
}

// ---- tensor batching (src/batch/) ---------------------------------------------

serve::Batch MakeDirectBatch(LSTMFixture& fixture,
                             const std::vector<size_t>& indices,
                             std::vector<std::future<runtime::ObjectRef>>* futures) {
  serve::Batch batch;
  batch.exec = fixture.exec;
  for (size_t i : indices) {
    serve::Request request;
    request.id = static_cast<int64_t>(i);
    request.args = fixture.ArgsFor(i);
    request.length_hint = fixture.lengths[i];
    request.enqueue_time = serve::Clock::now();
    futures->push_back(request.promise.get_future());
    batch.requests.push_back(std::move(request));
  }
  return batch;
}

TEST(TensorBatching, PackedServingBitIdenticalAcrossRaggedBuckets) {
  // Lengths chosen so the bucketed scheduler forms a lone request (B=1), a
  // partial bucket, and a full bucket — the three ragged shapes the pack
  // path must slice correctly. Bucket edges {8, 16, 32}: lengths 33-40 fill
  // one 8-deep overflow bucket, 12-14 a partial bucket, 5 rides alone.
  std::vector<int64_t> lengths = {33, 34, 35, 36, 37, 38, 39, 40,
                                  12, 13, 14, 5};
  LSTMFixture fixture(lengths, /*hidden_size=*/12, /*seed=*/7,
                      /*with_batched_entry=*/true);
  ASSERT_NE(fixture.exec->FindBatched("main"), nullptr);

  serve::ServeConfig config;
  config.num_workers = 2;
  config.batch.max_batch_size = 8;
  config.batch.max_wait_micros = 50000;
  config.batch.bucket_edges = {8, 16, 32};
  config.batch.tensor_batching = true;
  serve::Server server(fixture.exec, config);

  std::vector<std::future<runtime::ObjectRef>> futures;
  for (size_t i = 0; i < lengths.size(); ++i) {
    futures.push_back(server.Submit(fixture.ArgsFor(i), fixture.lengths[i]));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    ExpectBitIdentical(AsTensor(futures[i].get()), fixture.expected[i], i);
  }
  server.Shutdown();

  auto snap = server.stats();
  EXPECT_EQ(snap.completed, static_cast<int64_t>(lengths.size()));
  EXPECT_EQ(snap.failed, 0);
  EXPECT_EQ(snap.packed_batches, snap.batches)
      << "every batch of a batchable model must run packed";
  // The full 33-40 bucket pads 33..39 up to 40 rows; waste must be counted
  // and sit strictly between 0 and 1.
  EXPECT_GT(snap.padded_elements, 0);
  EXPECT_GT(snap.padding_waste, 0.0);
  EXPECT_LT(snap.padding_waste, 1.0);
}

TEST(TensorBatching, MultiLayerPackedServingBitIdentical) {
  // Two stacked layers: the masked h_next of layer l feeds layer l+1, so a
  // frozen row's (bit-exact) state must propagate through the stack — the
  // subtlest wiring of the batched twin. Ragged lengths in one bucket force
  // padding and per-row freezing at different steps.
  std::vector<int64_t> lengths = {9, 12, 16, 10, 15, 11, 14, 13};
  LSTMFixture fixture(lengths, /*hidden_size=*/12, /*seed=*/29,
                      /*with_batched_entry=*/true, /*num_layers=*/2);

  serve::ServeConfig config;
  config.num_workers = 1;
  config.batch.max_batch_size = 8;
  config.batch.max_wait_micros = 50000;
  config.batch.bucket_edges = {8, 16, 32};
  config.batch.tensor_batching = true;
  serve::Server server(fixture.exec, config);

  std::vector<std::future<runtime::ObjectRef>> futures;
  for (size_t i = 0; i < lengths.size(); ++i) {
    futures.push_back(server.Submit(fixture.ArgsFor(i), fixture.lengths[i]));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    ExpectBitIdentical(AsTensor(futures[i].get()), fixture.expected[i], i);
  }
  server.Shutdown();
  auto snap = server.stats();
  EXPECT_EQ(snap.packed_batches, snap.batches);
  EXPECT_GT(snap.padded_elements, 0);
}

TEST(TensorBatching, PackPlanPadsAndUnpacksExactly) {
  std::vector<int64_t> lengths = {3, 1, 4};
  LSTMFixture fixture(lengths, /*hidden_size=*/10, /*seed=*/21,
                      /*with_batched_entry=*/true);
  std::vector<std::future<runtime::ObjectRef>> futures;
  serve::Batch batch = MakeDirectBatch(fixture, {0, 1, 2}, &futures);

  batch::PackCheck check = batch::AnalyzeBatch(*fixture.exec, batch.requests);
  ASSERT_TRUE(check.ok()) << check.reason;
  batch::PackPlan plan = batch::PackPlan::Build(*check.spec, batch.requests);
  EXPECT_EQ(plan.batch_size(), 3);
  EXPECT_EQ(plan.max_len(), 4);
  const int64_t D = 8;  // fixture input_size
  EXPECT_EQ(plan.total_elements(), 4 * 3 * D);
  EXPECT_EQ(plan.padded_elements(), (4 * 3 - (3 + 1 + 4)) * D);

  auto args = plan.PackArgs(batch.requests, runtime::GlobalNaiveAllocator());
  // packed [Lmax, B, D] + max_len + lengths + h0/c0 (1 layer).
  ASSERT_EQ(args.size(), 3u + 2u);
  const NDArray& packed = AsTensor(args[0]);
  ASSERT_EQ(packed.shape(), (runtime::ShapeVec{4, 3, D}));
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t t = 0; t < 4; ++t) {
      for (int64_t d = 0; d < D; ++d) {
        float got = packed.data<float>()[(t * 3 + r) * D + d];
        float want = t < lengths[static_cast<size_t>(r)]
                         ? fixture.inputs[static_cast<size_t>(r)]
                               .data<float>()[t * D + d]
                         : 0.0f;
        ASSERT_EQ(got, want) << "row " << r << " step " << t << " dim " << d;
      }
    }
  }
  EXPECT_EQ(AsTensor(args[1]).data<int64_t>()[0], 4);
  const NDArray& len_col = AsTensor(args[2]);
  ASSERT_EQ(len_col.shape(), (runtime::ShapeVec{3, 1}));
  for (int64_t r = 0; r < 3; ++r) {
    EXPECT_EQ(len_col.data<int64_t>()[r], lengths[static_cast<size_t>(r)]);
  }

  // Unpack: row r of a synthetic [B, W] result becomes request r's [1, W].
  NDArray fake = NDArray::Empty({3, 5}, runtime::DataType::Float32());
  for (int64_t i = 0; i < 15; ++i) fake.data<float>()[i] = static_cast<float>(i);
  auto outs = plan.Unpack(MakeTensor(fake), runtime::GlobalNaiveAllocator());
  ASSERT_EQ(outs.size(), 3u);
  for (int64_t r = 0; r < 3; ++r) {
    ASSERT_EQ(outs[static_cast<size_t>(r)].shape(), (runtime::ShapeVec{1, 5}));
    for (int64_t j = 0; j < 5; ++j) {
      EXPECT_EQ(outs[static_cast<size_t>(r)].data<float>()[j],
                static_cast<float>(r * 5 + j));
    }
  }

  // Unused: fulfill the promises so the futures don't dangle.
  for (auto& request : batch.requests) request.promise.set_value({});
}

TEST(TensorBatching, RunBatchFallsBackWithoutBatchedEntry) {
  // Executable compiled WITHOUT batched entries: tensor batching must
  // degrade to the per-request loop, with correct results and a reason.
  std::vector<int64_t> lengths = {6, 9, 6, 9};
  LSTMFixture fixture(lengths, /*hidden_size=*/12, /*seed=*/11,
                      /*with_batched_entry=*/false);
  ASSERT_EQ(fixture.exec->FindBatched("main"), nullptr);

  std::vector<std::future<runtime::ObjectRef>> futures;
  serve::Batch batch = MakeDirectBatch(fixture, {0, 1, 2, 3}, &futures);
  vm::VirtualMachine machine(fixture.exec);
  auto run = batch::RunBatch(machine, batch, /*tensor_batching=*/true,
                             /*on_done=*/nullptr);
  EXPECT_FALSE(run.packed);
  EXPECT_NE(run.fallback_reason.find("no batched entry"), std::string::npos)
      << run.fallback_reason;
  for (size_t i = 0; i < futures.size(); ++i) {
    ExpectBitIdentical(AsTensor(futures[i].get()), fixture.expected[i], i);
  }
}

TEST(TensorBatching, AnalyzeRejectsPartialDispatchCoverage) {
  // Partial residue coverage mixes dense kernel families across row counts,
  // which breaks per-row bit-identity; full coverage (8) and no coverage
  // (1) are both safe (docs/ARCHITECTURE.md).
  std::vector<int64_t> lengths = {4, 6};
  for (int variants : {1, 2, 4, 8}) {
    models::LSTMConfig config;
    config.input_size = 8;
    config.hidden_size = 12;
    config.emit_batched = true;
    auto model = models::BuildLSTM(config);
    ir::Module mod = model.module;
    core::CompileOptions opts;
    opts.dense_dispatch_variants = variants;
    opts.batched_entries = {model.batched_spec};
    auto exec = core::Compile(mod, opts).executable;

    support::Rng rng(5);
    std::vector<serve::Request> requests;
    for (int64_t len : lengths) {
      serve::Request request;
      request.args = {
          MakeTensor(models::RandomSequence(len, config.input_size, rng)),
          MakeTensor(NDArray::Scalar<int64_t>(len))};
      requests.push_back(std::move(request));
    }
    batch::PackCheck check = batch::AnalyzeBatch(*exec, requests);
    if (variants == 1 || variants == 8) {
      EXPECT_TRUE(check.ok()) << "variants=" << variants << ": " << check.reason;
    } else {
      EXPECT_FALSE(check.ok()) << "variants=" << variants;
      EXPECT_NE(check.reason.find("dispatch"), std::string::npos);
    }
  }
}

TEST(TensorBatching, BatchedSpecSurvivesSaveLoad) {
  std::vector<int64_t> lengths = {7, 3, 5};
  LSTMFixture fixture(lengths, /*hidden_size=*/12, /*seed=*/13,
                      /*with_batched_entry=*/true);
  std::stringstream buffer;
  fixture.exec->Save(buffer);
  auto loaded = vm::Executable::Load(buffer);
  ASSERT_EQ(loaded->batched.size(), 1u);
  const vm::BatchedEntrySpec* spec = loaded->FindBatched("main");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->batched_function, "main_batched");
  EXPECT_EQ(spec->feature_width, 8);
  EXPECT_EQ(spec->state_width, 12);
  EXPECT_EQ(spec->num_state_args, 2);
  EXPECT_EQ(spec->len_arg, 1);

  // The loaded executable must serve packed batches bit-identically too.
  serve::ServeConfig config;
  config.num_workers = 1;
  config.batch.max_batch_size = 4;
  config.batch.max_wait_micros = 50000;
  config.batch.tensor_batching = true;
  serve::Server server(loaded, config);
  std::vector<std::future<runtime::ObjectRef>> futures;
  for (size_t i = 0; i < lengths.size(); ++i) {
    // One length hint => one bucket => one packed batch of 3.
    futures.push_back(server.Submit(fixture.ArgsFor(i), /*length_hint=*/8));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    ExpectBitIdentical(AsTensor(futures[i].get()), fixture.expected[i], i);
  }
  server.Shutdown();
  EXPECT_GT(server.stats().packed_batches, 0);
}

TEST(ServeStats, BatchHistogramAndPaddingWaste) {
  serve::ServeStats stats;
  stats.RecordBatch(1);
  stats.RecordBatch(2);
  stats.RecordBatch(4);
  stats.RecordBatch(8);
  stats.RecordBatch(9);
  stats.RecordBatch(40);
  stats.RecordPackedBatch(/*padded=*/25, /*total=*/100);
  stats.RecordPackedBatch(/*padded=*/0, /*total=*/100);
  auto snap = stats.Snapshot();
  ASSERT_EQ(snap.batch_size_hist.size(), serve::ServeStats::kBatchHistBuckets);
  EXPECT_EQ(snap.batch_size_hist[0], 1);  // "1"
  EXPECT_EQ(snap.batch_size_hist[1], 1);  // "2"
  EXPECT_EQ(snap.batch_size_hist[2], 1);  // "3-4"
  EXPECT_EQ(snap.batch_size_hist[3], 1);  // "5-8"
  EXPECT_EQ(snap.batch_size_hist[4], 1);  // "9-16"
  EXPECT_EQ(snap.batch_size_hist[6], 1);  // "33+"
  int64_t hist_total = 0;
  for (int64_t c : snap.batch_size_hist) hist_total += c;
  EXPECT_EQ(hist_total, snap.batches);
  EXPECT_EQ(snap.packed_batches, 2);
  EXPECT_EQ(snap.padded_elements, 25);
  EXPECT_EQ(snap.packed_total_elements, 200);
  EXPECT_DOUBLE_EQ(snap.padding_waste, 0.125);
  EXPECT_STREQ(serve::ServeStats::BatchHistLabel(3), "5-8");
  stats.Reset();
  EXPECT_EQ(stats.Snapshot().packed_batches, 0);
}

// ---- shape-bucket executable cache --------------------------------------------

/// Variant compiler for LSTM fixtures: rebuilds the module with the same
/// (deterministic) weights and bakes the bucket shape in.
serve::CompileVariantFn LSTMVariantCompiler(models::LSTMConfig config) {
  return [config](int64_t max_len, int64_t batch,
                  const codegen::DenseConfig& dense_config)
             -> std::shared_ptr<vm::Executable> {
    auto model = models::BuildLSTM(config);
    core::CompileOptions opts;
    opts.batched_entries = {model.batched_spec};
    opts.specialize_length = max_len;
    opts.specialize_batch = batch;
    opts.dense_config = dense_config;
    return core::Compile(model.module, opts).executable;
  };
}

TEST(ExecCache, VariantPackedBitIdenticalToGenericPackedAndSequential) {
  // Eight requests of one exact length: the shape a cached variant serves.
  std::vector<int64_t> lengths(8, 11);
  LSTMFixture fixture(lengths, /*hidden_size=*/12, /*seed=*/31,
                      /*with_batched_entry=*/true);
  auto variant = LSTMVariantCompiler(fixture.model.config)(11, 8, codegen::DenseConfig{});
  ASSERT_TRUE(variant->variant.is_variant());
  EXPECT_EQ(variant->variant.specialized_len, 11);
  EXPECT_EQ(variant->variant.specialized_batch, 8);
  // Baking the shape rewires the spec onto the unmasked exact twin and
  // unrolls it: the entry is straight-line, clearly bigger than one loop
  // body with no recursion left. (Compare against the generic loop body,
  // not the generic executable's total: the generic program also carries
  // the continuous step twin, and the unrolled exact steps are leaner
  // per step than the masked generic body.)
  ASSERT_NE(variant->FindBatched("main"), nullptr);
  EXPECT_EQ(variant->FindBatched("main")->batched_function,
            "main_batched_exact");
  int32_t entry_index = variant->FunctionIndex("main_batched_exact");
  int32_t body_index = fixture.exec->FunctionIndex("lstm_loop_batched");
  ASSERT_GE(body_index, 0);
  EXPECT_GT(
      variant->functions[static_cast<size_t>(entry_index)].instructions.size(),
      2 * fixture.exec->functions[static_cast<size_t>(body_index)]
              .instructions.size())
      << "specialized entry should be unrolled into straight-line bytecode";
  // The tuned table covers exactly the batch residue (8 % 8 = 0) and the
  // per-request fallback row (1).
  EXPECT_EQ(variant->dispatch_table.residue_mask(), 0b11u);

  auto run_packed = [&](const std::shared_ptr<vm::Executable>& exec) {
    std::vector<std::future<runtime::ObjectRef>> futures;
    serve::Batch batch =
        MakeDirectBatch(fixture, {0, 1, 2, 3, 4, 5, 6, 7}, &futures);
    batch.exec = exec;
    vm::VirtualMachine machine(exec);
    auto run = batch::RunBatch(machine, batch, /*tensor_batching=*/true,
                               nullptr);
    EXPECT_TRUE(run.packed) << run.fallback_reason;
    std::vector<NDArray> outs;
    for (auto& f : futures) outs.push_back(AsTensor(f.get()));
    return std::make_pair(std::move(outs), run);
  };

  auto [generic_outs, generic_run] = run_packed(fixture.exec);
  auto [variant_outs, variant_run] = run_packed(variant);
  for (size_t i = 0; i < lengths.size(); ++i) {
    ExpectBitIdentical(variant_outs[i], generic_outs[i], i);
    ExpectBitIdentical(variant_outs[i], fixture.expected[i], i);
  }
  // Same-length batches pad nothing on either executable.
  EXPECT_EQ(variant_run.padded_elements, 0);
  EXPECT_EQ(generic_run.padded_elements, 0);
}

TEST(ExecCache, VariantRejectsMismatchedBatches) {
  std::vector<int64_t> lengths = {9, 9, 9, 10};
  LSTMFixture fixture(lengths, /*hidden_size=*/10, /*seed=*/17,
                      /*with_batched_entry=*/true);
  auto variant = LSTMVariantCompiler(fixture.model.config)(9, 2, codegen::DenseConfig{});

  // Wrong batch size (variant bakes 2, batch has 3).
  {
    std::vector<std::future<runtime::ObjectRef>> futures;
    serve::Batch batch = MakeDirectBatch(fixture, {0, 1, 2}, &futures);
    batch::PackCheck check = batch::AnalyzeBatch(*variant, batch.requests);
    EXPECT_FALSE(check.ok());
    EXPECT_NE(check.reason.find("specialized to batches"), std::string::npos)
        << check.reason;
    batch.requests.clear();  // unfulfilled promises are fine in-test
  }
  // Wrong length (9 baked, request 3 is length 10).
  {
    std::vector<std::future<runtime::ObjectRef>> futures;
    serve::Batch batch = MakeDirectBatch(fixture, {0, 3}, &futures);
    batch::PackCheck check = batch::AnalyzeBatch(*variant, batch.requests);
    EXPECT_FALSE(check.ok());
    EXPECT_NE(check.reason.find("specialized length"), std::string::npos)
        << check.reason;
  }
  // Exact match passes and still runs bit-identically.
  {
    std::vector<std::future<runtime::ObjectRef>> futures;
    serve::Batch batch = MakeDirectBatch(fixture, {0, 1}, &futures);
    batch.exec = variant;
    vm::VirtualMachine machine(variant);
    auto run =
        batch::RunBatch(machine, batch, /*tensor_batching=*/true, nullptr);
    EXPECT_TRUE(run.packed) << run.fallback_reason;
    ExpectBitIdentical(AsTensor(futures[0].get()), fixture.expected[0], 0);
    ExpectBitIdentical(AsTensor(futures[1].get()), fixture.expected[1], 1);
  }
}

TEST(ExecCache, VariantSurvivesSaveLoad) {
  std::vector<int64_t> lengths(4, 6);
  LSTMFixture fixture(lengths, /*hidden_size=*/10, /*seed=*/23,
                      /*with_batched_entry=*/true);
  auto variant = LSTMVariantCompiler(fixture.model.config)(6, 4, codegen::DenseConfig{});

  std::stringstream buffer;
  variant->Save(buffer);
  auto loaded = vm::Executable::Load(buffer);
  EXPECT_EQ(loaded->variant.specialized_len, 6);
  EXPECT_EQ(loaded->variant.specialized_batch, 4);
  EXPECT_EQ(loaded->dispatch_table.residue_mask(),
            variant->dispatch_table.residue_mask());
  ASSERT_NE(loaded->FindBatched("main"), nullptr);
  EXPECT_EQ(loaded->FindBatched("main")->layout,
            vm::BatchedEntrySpec::Layout::kTimeMajor);

  std::vector<std::future<runtime::ObjectRef>> futures;
  serve::Batch batch = MakeDirectBatch(fixture, {0, 1, 2, 3}, &futures);
  batch.exec = loaded;
  vm::VirtualMachine machine(loaded);
  auto run = batch::RunBatch(machine, batch, /*tensor_batching=*/true, nullptr);
  EXPECT_TRUE(run.packed) << run.fallback_reason;
  for (size_t i = 0; i < lengths.size(); ++i) {
    ExpectBitIdentical(AsTensor(futures[i].get()), fixture.expected[i], i);
  }
}

TEST(ExecCache, LookupObservesCompilesAndHits) {
  std::vector<int64_t> lengths(2, 7);
  LSTMFixture fixture(lengths, /*hidden_size=*/10, /*seed=*/41,
                      /*with_batched_entry=*/true);
  serve::ExecCacheConfig config;
  config.capacity = 4;
  config.min_observations = 2;
  config.specialize_batch = 2;
  serve::ExecCache cache(LSTMVariantCompiler(fixture.model.config), config);

  // Unservable batch sizes never count observations: no amount of
  // wrong-size traffic may trigger a compile its batches cannot use.
  EXPECT_EQ(cache.Lookup(9, 1), nullptr);
  EXPECT_EQ(cache.Lookup(9, 1), nullptr);
  EXPECT_EQ(cache.Lookup(9, 1), nullptr);
  cache.WaitIdle();
  EXPECT_TRUE(cache.snapshot().resident.empty());

  EXPECT_EQ(cache.Lookup(7, 2), nullptr) << "first sight: observe only";
  cache.WaitIdle();
  EXPECT_TRUE(cache.snapshot().resident.empty())
      << "one observation must not compile yet";
  EXPECT_EQ(cache.Lookup(7, 2), nullptr) << "second miss queues the compile";
  cache.WaitIdle();
  auto variant = cache.Lookup(7, 2);
  ASSERT_NE(variant, nullptr);
  EXPECT_EQ(variant->variant.specialized_len, 7);
  // A partial batch cannot use the size-2 variant: miss, but no recompile.
  EXPECT_EQ(cache.Lookup(7, 1), nullptr);
  cache.WaitIdle();
  auto snap = cache.snapshot();
  EXPECT_EQ(snap.compiles, 1);
  EXPECT_EQ(snap.hits, 1);
  EXPECT_EQ(snap.misses, 6);  // 3 unservable + 2 observing + 1 partial
  ASSERT_EQ(snap.resident.size(), 1u);
  EXPECT_EQ(snap.resident[0], 7);
}

TEST(ExecCache, VariantsCarryTunedDenseConfig) {
  models::LSTMConfig config;
  config.input_size = 8;
  config.hidden_size = 10;
  config.emit_batched = true;
  serve::ExecCacheConfig cache_config;
  cache_config.capacity = 4;
  cache_config.min_observations = 1;
  cache_config.specialize_batch = 2;
  // Tuning proxy shape (distinct from every other test so the process-wide
  // memo is cold here): the compile thread measures (batch, tune_n, tune_k)
  // once and stamps the choice on every variant it bakes.
  cache_config.tune_n = 24;
  cache_config.tune_k = 40;
  cache_config.tune_repeats = 1;
  serve::ServeStats stats;
  serve::ExecCache cache(LSTMVariantCompiler(config), cache_config, &stats);

  EXPECT_EQ(cache.Lookup(5, 2), nullptr);
  cache.WaitIdle();
  auto variant = cache.Lookup(5, 2);
  ASSERT_NE(variant, nullptr);
  EXPECT_TRUE(variant->dense_config_tuned);
  // The baked choice is exactly the memoized tuner pick for the shape.
  auto tuned = codegen::TuneCache::Global()->GetOrTune(2, 24, 40, 1);
  EXPECT_FALSE(tuned.fresh) << "the compile thread already paid for this";
  EXPECT_EQ(variant->dense_config, tuned.config);

  auto snap = cache.snapshot();
  EXPECT_EQ(snap.compiles, 1);
  EXPECT_EQ(snap.tune_events, 1);
  ASSERT_EQ(snap.variants.size(), 1u);
  EXPECT_EQ(snap.variants[0].length, 5);
  EXPECT_TRUE(snap.variants[0].tuned);
  EXPECT_EQ(snap.variants[0].dense_config, tuned.config.ToString());

  // A second length reuses the memoized measurement: compiles advance,
  // tune events do not (tune-once-per-shape).
  EXPECT_EQ(cache.Lookup(6, 2), nullptr);
  cache.WaitIdle();
  ASSERT_NE(cache.Lookup(6, 2), nullptr);
  snap = cache.snapshot();
  EXPECT_EQ(snap.compiles, 2);
  EXPECT_EQ(snap.tune_events, 1);
  EXPECT_EQ(snap.variants.size(), 2u);
  EXPECT_EQ(stats.Snapshot().tune_events, 1);
}

TEST(ExecCache, LRUEvictionUnderBucketChurn) {
  models::LSTMConfig config;
  config.input_size = 8;
  config.hidden_size = 10;
  config.emit_batched = true;
  serve::ExecCacheConfig cache_config;
  cache_config.capacity = 2;
  cache_config.min_observations = 1;
  cache_config.specialize_batch = 2;
  serve::ServeStats stats;
  serve::ExecCache cache(LSTMVariantCompiler(config), cache_config, &stats);

  // Churn through four lengths; only the two most recent survive.
  for (int64_t len : {4, 5, 6, 7}) {
    EXPECT_EQ(cache.Lookup(len, 2), nullptr);
    cache.WaitIdle();
    ASSERT_NE(cache.Lookup(len, 2), nullptr) << "length " << len;
  }
  auto snap = cache.snapshot();
  EXPECT_EQ(snap.compiles, 4);
  EXPECT_EQ(snap.evictions, 2);
  ASSERT_EQ(snap.resident.size(), 2u);
  EXPECT_EQ(snap.resident[0], 7) << "most recently used first";
  EXPECT_EQ(snap.resident[1], 6);
  EXPECT_EQ(stats.Snapshot().cache_evictions, 2);
  EXPECT_EQ(stats.Snapshot().variant_compiles, 4);

  // A hit refreshes LRU order: touch 6, then insert 4 — 7 is the victim.
  ASSERT_NE(cache.Lookup(6, 2), nullptr);
  EXPECT_EQ(cache.Lookup(4, 2), nullptr) << "4 was evicted and re-observes";
  cache.WaitIdle();
  ASSERT_NE(cache.Lookup(4, 2), nullptr);
  snap = cache.snapshot();
  ASSERT_EQ(snap.resident.size(), 2u);
  EXPECT_EQ(snap.resident[0], 4);
  EXPECT_EQ(snap.resident[1], 6);
}

TEST(ExecCache, ServerCarvesSameLengthBatchesOntoVariants) {
  // 16 requests of length 10 + 2 stragglers in the same bucket. The first
  // full batch observes (miss, generic), the cache compiles in the
  // background, and once warm the second wave carves onto the variant.
  std::vector<int64_t> lengths(16, 10);
  lengths.push_back(12);
  lengths.push_back(13);
  LSTMFixture fixture(lengths, /*hidden_size=*/12, /*seed=*/37,
                      /*with_batched_entry=*/true);

  serve::ExecCacheConfig cache_config;
  cache_config.capacity = 4;
  cache_config.min_observations = 1;
  cache_config.specialize_batch = 8;
  auto cache = std::make_shared<serve::ExecCache>(
      LSTMVariantCompiler(fixture.model.config), cache_config);

  serve::ServeConfig config;
  config.num_workers = 2;
  serve::Server server(config);
  serve::ModelConfig model;
  model.exec = fixture.exec;
  model.batch.max_batch_size = 8;
  model.batch.max_wait_micros = 50000;
  model.batch.bucket_edges = {8, 16, 32};
  model.batch.tensor_batching = true;
  model.exec_cache = cache;
  server.AddModel("lstm", model);
  server.Start();

  std::vector<std::future<runtime::ObjectRef>> futures;
  // First full batch of length 10: dispatches generic, triggers compile.
  for (size_t i = 0; i < 8; ++i) {
    futures.push_back(server.Submit("lstm", fixture.ArgsFor(i), 10));
  }
  // Await the first wave so its dispatch (and the cache observation) has
  // definitely happened, then let the background compile finish.
  for (size_t i = 0; i < 8; ++i) futures[i].wait();
  cache->WaitIdle();
  // Second wave: must carve the 8 length-10 requests onto the variant even
  // though the stragglers share their bucket.
  for (size_t i = 8; i < lengths.size(); ++i) {
    futures.push_back(
        server.Submit("lstm", fixture.ArgsFor(i), fixture.lengths[i]));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    ExpectBitIdentical(AsTensor(futures[i].get()), fixture.expected[i], i);
  }
  server.Shutdown();

  auto snap = server.stats("lstm");
  EXPECT_GE(snap.cache_hits, 1) << "second wave must hit the variant";
  EXPECT_GE(snap.variant_batches, 1);
  EXPECT_EQ(snap.variant_padded_elements, 0)
      << "cached batches are exact-length: zero padding by construction";
  auto cache_snap = cache->snapshot();
  EXPECT_EQ(cache_snap.compiles, 1) << "one hot length, one variant";
}

TEST(ExecCache, GenericServesWhileVariantCompiles) {
  // A slow compiler must never block serving: requests keep completing on
  // the generic executable while the variant bakes, and later batches move
  // onto it. Run under TSan in CI, this also races Lookup/publish against
  // the serving path.
  std::vector<int64_t> lengths(32, 9);
  LSTMFixture fixture(lengths, /*hidden_size=*/12, /*seed=*/43,
                      /*with_batched_entry=*/true);
  auto slow_compile = [inner = LSTMVariantCompiler(fixture.model.config)](
                          int64_t len, int64_t batch,
                          const codegen::DenseConfig& dense_config) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return inner(len, batch, dense_config);
  };
  serve::ExecCacheConfig cache_config;
  cache_config.capacity = 2;
  cache_config.min_observations = 1;
  cache_config.specialize_batch = 4;
  auto cache =
      std::make_shared<serve::ExecCache>(slow_compile, cache_config);

  serve::ServeConfig config;
  config.num_workers = 2;
  serve::Server server(config);
  serve::ModelConfig model;
  model.exec = fixture.exec;
  model.batch.max_batch_size = 4;
  model.batch.max_wait_micros = 1000;
  model.batch.tensor_batching = true;
  model.exec_cache = cache;
  server.AddModel("lstm", model);
  server.Start();

  std::vector<std::future<runtime::ObjectRef>> futures;
  for (size_t i = 0; i < lengths.size(); ++i) {
    futures.push_back(server.Submit("lstm", fixture.ArgsFor(i), 9));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    ExpectBitIdentical(AsTensor(futures[i].get()), fixture.expected[i], i);
  }
  server.Shutdown();
  auto snap = server.stats("lstm");
  EXPECT_EQ(snap.completed, static_cast<int64_t>(lengths.size()));
  EXPECT_EQ(snap.failed, 0);
  EXPECT_GE(snap.cache_misses, 1) << "early batches served generic";
}

// ---- batch-major row-map packing ----------------------------------------------

/// Row-independent feed-forward model: main(x: [L, D]) = relu(dense(x, w)),
/// rows map to rows, so its own entry doubles as the batched function under
/// the row-map layout.
struct RowMLPFixture {
  std::shared_ptr<vm::Executable> exec;
  std::vector<NDArray> inputs;
  std::vector<int64_t> lengths;
  std::vector<NDArray> expected;

  explicit RowMLPFixture(std::vector<int64_t> request_lengths,
                         int64_t D = 8, int64_t W = 6, uint64_t seed = 3) {
    support::Rng rng(seed);
    NDArray w = NDArray::Empty({W, D}, runtime::DataType::Float32());
    w.FillUniform(rng, -0.5, 0.5);
    ir::Dim L = ir::Dim::FreshSym("L");
    ir::Var x = ir::MakeVar("x", ir::TensorType({L, ir::Dim::Static(D)}));
    ir::Module mod;
    mod.Add("main",
            ir::MakeFunction(
                {x}, op::Call1("relu", op::Call2("nn.dense", x,
                                                 ir::MakeConstant(w)))));
    vm::BatchedEntrySpec spec;
    spec.function = "main";
    spec.batched_function = "main";  // rows map to rows: reuse the entry
    spec.layout = vm::BatchedEntrySpec::Layout::kBatchMajorRowMap;
    spec.seq_arg = 0;
    spec.len_arg = -1;
    spec.feature_width = static_cast<int32_t>(D);
    core::CompileOptions opts;
    opts.batched_entries = {spec};
    exec = core::Compile(mod, opts).executable;

    lengths = std::move(request_lengths);
    vm::VirtualMachine sequential(exec);
    for (int64_t len : lengths) {
      NDArray seq = models::RandomSequence(len, D, rng);
      inputs.push_back(seq);
      expected.push_back(AsTensor(sequential.Invoke("main", {MakeTensor(seq)})));
    }
  }
};

TEST(TensorBatching, RowMapPackedBitIdenticalWithZeroPadding) {
  RowMLPFixture fixture({5, 1, 7, 3});
  std::vector<std::future<runtime::ObjectRef>> futures;
  serve::Batch batch;
  batch.exec = fixture.exec;
  for (size_t i = 0; i < fixture.lengths.size(); ++i) {
    serve::Request request;
    request.id = static_cast<int64_t>(i);
    request.args = {MakeTensor(fixture.inputs[i])};
    request.length_hint = fixture.lengths[i];
    futures.push_back(request.promise.get_future());
    batch.requests.push_back(std::move(request));
  }

  batch::PackCheck check = batch::AnalyzeBatch(*fixture.exec, batch.requests);
  ASSERT_TRUE(check.ok()) << check.reason;
  batch::PackPlan plan = batch::PackPlan::Build(*check.spec, batch.requests);
  EXPECT_EQ(plan.padded_elements(), 0) << "row-map packing never pads";
  EXPECT_EQ(plan.total_elements(), (5 + 1 + 7 + 3) * 8);
  auto args = plan.PackArgs(batch.requests, runtime::GlobalNaiveAllocator());
  ASSERT_EQ(args.size(), 1u) << "row-map convention: just the packed rows";
  EXPECT_EQ(AsTensor(args[0]).shape(), (runtime::ShapeVec{16, 8}));

  vm::VirtualMachine machine(fixture.exec);
  auto run = batch::RunBatch(machine, batch, /*tensor_batching=*/true, nullptr);
  EXPECT_TRUE(run.packed) << run.fallback_reason;
  EXPECT_EQ(run.padded_elements, 0);
  for (size_t i = 0; i < futures.size(); ++i) {
    NDArray out = AsTensor(futures[i].get());
    ASSERT_EQ(out.shape()[0], fixture.lengths[i]) << "per-request row count";
    ExpectBitIdentical(out, fixture.expected[i], i);
  }
}

TEST(TensorBatching, RowMapRejectsStatefulSpecs) {
  RowMLPFixture fixture({4, 2});
  // Forge a stateful row-map spec (via a serialization round trip — the
  // executable itself is non-copyable): must be rejected, states need the
  // time-major convention.
  std::stringstream buffer;
  fixture.exec->Save(buffer);
  auto forged = vm::Executable::Load(buffer);
  forged->batched[0].num_state_args = 1;
  forged->batched[0].state_width = 4;
  serve::Request request;
  request.args = {MakeTensor(fixture.inputs[0])};
  std::vector<serve::Request> requests;
  requests.push_back(std::move(request));
  batch::PackCheck check = batch::AnalyzeBatch(*forged, requests);
  EXPECT_FALSE(check.ok());
  EXPECT_NE(check.reason.find("state"), std::string::npos) << check.reason;
}

TEST(ServeStats, PerBucketPaddingAndCacheCounters) {
  serve::ServeStats stats;
  stats.RecordPackedBatch(/*padded=*/10, /*total=*/100, /*bucket=*/1,
                          /*on_variant=*/false);
  stats.RecordPackedBatch(/*padded=*/0, /*total=*/80, /*bucket=*/2,
                          /*on_variant=*/true);
  stats.RecordPackedBatch(/*padded=*/6, /*total=*/20, /*bucket=*/1,
                          /*on_variant=*/false);
  stats.RecordCacheHit();
  stats.RecordCacheHit();
  stats.RecordCacheMiss();
  stats.RecordCacheEviction();
  stats.RecordVariantCompile();
  auto snap = stats.Snapshot();
  ASSERT_EQ(snap.padding_by_bucket.size(), 2u);
  EXPECT_EQ(snap.padding_by_bucket[0].bucket, 1);
  EXPECT_EQ(snap.padding_by_bucket[0].padded_elements, 16);
  EXPECT_EQ(snap.padding_by_bucket[0].total_elements, 120);
  EXPECT_EQ(snap.padding_by_bucket[1].bucket, 2);
  EXPECT_DOUBLE_EQ(snap.padding_by_bucket[1].waste(), 0.0);
  EXPECT_EQ(snap.variant_batches, 1);
  EXPECT_EQ(snap.variant_padded_elements, 0);
  EXPECT_DOUBLE_EQ(snap.variant_padding_waste, 0.0);
  EXPECT_EQ(snap.cache_hits, 2);
  EXPECT_EQ(snap.cache_misses, 1);
  EXPECT_EQ(snap.cache_evictions, 1);
  EXPECT_EQ(snap.variant_compiles, 1);
  EXPECT_DOUBLE_EQ(snap.cache_hit_rate, 2.0 / 3.0);
  stats.Reset();
  auto clean = stats.Snapshot();
  EXPECT_TRUE(clean.padding_by_bucket.empty());
  EXPECT_EQ(clean.cache_hits, 0);
  EXPECT_EQ(clean.variant_batches, 0);
}

// ---- RequestQueue under concurrent producers ----------------------------------

TEST(RequestQueue, TryPushDepthSnapshotIsConsistentWithAdmission) {
  serve::RequestQueue queue(3);
  size_t depth = 0;
  for (int64_t i = 0; i < 3; ++i) {
    auto r = MakeDummyRequest(i);
    ASSERT_TRUE(queue.TryPush(r, &depth));
    EXPECT_EQ(depth, static_cast<size_t>(i + 1))
        << "depth after a successful push counts the pushed item";
  }
  auto rejected = MakeDummyRequest(3);
  EXPECT_FALSE(queue.TryPush(rejected, &depth));
  EXPECT_EQ(depth, 3u) << "rejection reports the full depth";
  ASSERT_TRUE(queue.Pop().has_value());
  auto readmitted = MakeDummyRequest(4);
  EXPECT_TRUE(queue.TryPush(readmitted, &depth));
  EXPECT_EQ(depth, 3u);
  queue.Close();
  auto after_close = MakeDummyRequest(5);
  EXPECT_FALSE(queue.TryPush(after_close, &depth));
}

TEST(RequestQueue, ConcurrentShedAccountingBalances) {
  // N producers race TryPush against a throttled consumer; whatever the
  // interleaving, accepted + rejected == attempts and the consumer pops
  // exactly the accepted ones. This is the accounting the HTTP 429 path
  // reports to clients, so it must balance under races.
  const int kProducers = 4;
  const int kPerProducer = 200;
  serve::RequestQueue queue(8);
  std::atomic<int64_t> accepted{0}, rejected{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        auto r = MakeDummyRequest(p * kPerProducer + i);
        size_t depth = 0;
        if (queue.TryPush(r, &depth)) {
          accepted.fetch_add(1);
          EXPECT_GE(depth, 1u);
          EXPECT_LE(depth, 8u) << "depth snapshot never exceeds capacity";
        } else {
          rejected.fetch_add(1);
          EXPECT_EQ(depth, 8u)
              << "a shed on an open queue means it was observed full";
        }
      }
    });
  }

  std::atomic<int64_t> popped{0};
  std::thread consumer([&] {
    while (auto r = queue.Pop()) {
      popped.fetch_add(1);
      // A consumer slower than the producers, so shedding actually occurs.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });
  for (auto& t : producers) t.join();
  queue.Close();
  consumer.join();

  EXPECT_EQ(accepted.load() + rejected.load(), kProducers * kPerProducer);
  EXPECT_EQ(popped.load(), accepted.load())
      << "every accepted request is drained, none invented";
  EXPECT_GT(rejected.load(), 0) << "the throttled consumer must cause sheds";
}

TEST(RequestQueue, DrainAfterCloseKeepsPerProducerFifoOrder) {
  // Close() must not reorder or drop items already admitted: after close,
  // the consumer sees every accepted item, and each producer's accepted
  // items come out in that producer's submission order.
  const int kProducers = 4;
  const int kPerProducer = 100;
  serve::RequestQueue queue(kProducers * kPerProducer);
  std::vector<std::vector<int64_t>> accepted_ids(kProducers);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        auto r = MakeDummyRequest(p * kPerProducer + i);
        if (queue.TryPush(r)) {
          accepted_ids[static_cast<size_t>(p)].push_back(p * kPerProducer + i);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.Close();

  // Everything admitted before Close drains after it, in order.
  std::vector<std::vector<int64_t>> drained(kProducers);
  while (auto r = queue.Pop()) {
    drained[static_cast<size_t>(r->id / kPerProducer)].push_back(r->id);
  }
  EXPECT_TRUE(queue.closed());
  EXPECT_TRUE(queue.empty());
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(drained[static_cast<size_t>(p)],
              accepted_ids[static_cast<size_t>(p)])
        << "producer " << p;
  }
}

TEST(RequestQueue, EnqueueRacingCloseEitherLandsOrFailsCleanly) {
  // Producers hammering TryPush while another thread closes the queue:
  // every push either succeeds (and its item is drained) or fails; no
  // item is half-admitted or lost.
  const int kProducers = 4;
  serve::RequestQueue queue(1024);
  std::atomic<bool> go{false}, stop{false};
  std::atomic<int64_t> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!go.load()) {
      }
      int64_t i = 0;
      while (!stop.load()) {
        auto r = MakeDummyRequest(p * 1000000 + i++);
        if (queue.TryPush(r)) accepted.fetch_add(1);
      }
    });
  }
  go.store(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  queue.Close();
  stop.store(true);
  for (auto& t : producers) t.join();

  int64_t drained = 0;
  while (queue.Pop().has_value()) drained++;
  EXPECT_EQ(drained, accepted.load());
}

// ---- adaptive batch policy ----------------------------------------------------

TEST(AdaptiveBatchPolicy, UpdateStepsTowardFillTimeAndClamps) {
  serve::BatchPolicy policy;
  policy.max_batch_size = 8;
  policy.adaptive = true;
  policy.adaptive_min_wait_micros = 100;
  policy.adaptive_max_wait_micros = 10000;

  // No arrival signal: unchanged (but clamped into the band).
  EXPECT_EQ(serve::AdaptiveWaitUpdate(policy, 2000, 0.0), 2000);
  EXPECT_EQ(serve::AdaptiveWaitUpdate(policy, 50, 0.0), 100);
  EXPECT_EQ(serve::AdaptiveWaitUpdate(policy, 50000, 0.0), 10000);

  // Fast arrivals (gap 10us): target (8-1)*10 = 70 -> clamped to 100; a
  // long current wait moves a quarter of the way down per step.
  int64_t wait = 8000;
  wait = serve::AdaptiveWaitUpdate(policy, wait, 10.0);
  EXPECT_EQ(wait, 8000 + (100 - 8000) / 4);
  for (int i = 0; i < 64; ++i) {
    wait = serve::AdaptiveWaitUpdate(policy, wait, 10.0);
  }
  EXPECT_EQ(wait, 100) << "converges to the floor under heavy traffic";

  // Slow arrivals (gap 100ms): target clamps to the ceiling and the wait
  // climbs toward it.
  for (int i = 0; i < 64; ++i) {
    wait = serve::AdaptiveWaitUpdate(policy, wait, 100000.0);
  }
  EXPECT_EQ(wait, 10000) << "converges to the cap under light traffic";

  // Moderate rate (gap 500us): target (8-1)*500 = 3500, inside the band.
  wait = 3500;
  EXPECT_EQ(serve::AdaptiveWaitUpdate(policy, wait, 500.0), 3500)
      << "at target: stable";
}

TEST(AdaptiveBatchPolicy, ServerTracksArrivalRateAndPublishesGauge) {
  LSTMFixture fixture(24);
  serve::ServeConfig config;
  config.num_workers = 2;
  serve::Server server(config);
  serve::ModelConfig model;
  model.exec = fixture.exec;
  model.batch.max_batch_size = 4;
  model.batch.max_wait_micros = 2000;
  model.batch.adaptive = true;
  model.batch.adaptive_min_wait_micros = 100;
  model.batch.adaptive_max_wait_micros = 20000;
  server.AddModel("m", std::move(model));
  server.Start();

  std::vector<std::future<runtime::ObjectRef>> futures;
  for (size_t i = 0; i < fixture.lengths.size(); ++i) {
    futures.push_back(
        server.Submit("m", fixture.ArgsFor(i), fixture.lengths[i]));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    ExpectBitIdentical(AsTensor(futures[i].get()), fixture.expected[i], i);
  }
  server.Shutdown();

  auto snap = server.stats("m");
  EXPECT_EQ(snap.completed, static_cast<int64_t>(fixture.lengths.size()));
  EXPECT_EQ(snap.arrivals, static_cast<int64_t>(fixture.lengths.size()));
  EXPECT_GT(snap.mean_interarrival_us, 0.0);
  EXPECT_GT(snap.arrival_rate_rps, 0.0);
  EXPECT_GE(snap.adaptive_wait_micros, 100);
  EXPECT_LE(snap.adaptive_wait_micros, 20000);
}

// ---- callback completion path and graceful drain ------------------------------

TEST(Serve, CallbackPathDeliversResultsBitIdentical) {
  LSTMFixture fixture(12);
  serve::ServeConfig config;
  config.num_workers = 2;
  serve::Server server(config);
  serve::ModelConfig model;
  model.exec = fixture.exec;
  model.batch.max_batch_size = 4;
  model.batch.max_wait_micros = 500;
  server.AddModel("m", std::move(model));
  server.Start();

  std::mutex mu;
  std::vector<std::pair<size_t, runtime::ObjectRef>> results;
  std::atomic<int> errors{0};
  for (size_t i = 0; i < fixture.lengths.size(); ++i) {
    auto admit = server.TrySubmitCallback(
        "m", fixture.ArgsFor(i), fixture.lengths[i],
        [&, i](runtime::ObjectRef result, std::exception_ptr error,
               const obs::TraceContext&) {
          if (error != nullptr) {
            errors.fetch_add(1);
            return;
          }
          std::lock_guard<std::mutex> lock(mu);
          results.emplace_back(i, std::move(result));
        });
    ASSERT_EQ(admit.status, serve::Server::AdmitStatus::kAccepted);
    EXPECT_GE(admit.queue_depth, 1u);
    EXPECT_EQ(admit.queue_capacity, 256u);
  }
  server.Drain();  // all callbacks fired before Drain returns

  EXPECT_EQ(errors.load(), 0);
  ASSERT_EQ(results.size(), fixture.lengths.size());
  for (const auto& [i, result] : results) {
    ExpectBitIdentical(AsTensor(result), fixture.expected[i], i);
  }
}

TEST(Serve, TrySubmitCallbackReportsUnknownModelAndDraining) {
  LSTMFixture fixture(1);
  serve::ServeConfig config;
  config.num_workers = 1;
  serve::Server server(fixture.exec, config);

  auto unknown = server.TrySubmitCallback(
      "nope", fixture.ArgsFor(0), fixture.lengths[0],
      [](runtime::ObjectRef, std::exception_ptr, const obs::TraceContext&) {
        FAIL();
      });
  EXPECT_EQ(unknown.status, serve::Server::AdmitStatus::kUnknownModel);

  server.Drain();
  EXPECT_TRUE(server.draining());
  auto closed = server.TrySubmitCallback(
      "default", fixture.ArgsFor(0), fixture.lengths[0],
      [](runtime::ObjectRef, std::exception_ptr, const obs::TraceContext&) {
        FAIL();
      });
  EXPECT_EQ(closed.status, serve::Server::AdmitStatus::kClosed);
}

TEST(Serve, DrainFulfillsEveryQueuedRequestDeterministically) {
  // Queue a burst and immediately drain: teardown must fulfill every
  // admitted promise/callback (never drop queued requests), repeatably.
  for (int round = 0; round < 3; ++round) {
    LSTMFixture fixture(16, /*hidden_size=*/16, /*seed=*/77 + round);
    serve::ServeConfig config;
    config.num_workers = 1;
    serve::Server server(config);
    serve::ModelConfig model;
    model.exec = fixture.exec;
    model.batch.max_batch_size = 4;
    model.batch.max_wait_micros = 1000000;  // only Drain can flush partials
    server.AddModel("m", std::move(model));
    server.Start();

    std::atomic<int> callbacks{0};
    std::vector<std::future<runtime::ObjectRef>> futures;
    for (size_t i = 0; i < fixture.lengths.size(); ++i) {
      if (i % 2 == 0) {
        futures.push_back(
            server.Submit("m", fixture.ArgsFor(i), fixture.lengths[i]));
      } else {
        auto admit = server.TrySubmitCallback(
            "m", fixture.ArgsFor(i), fixture.lengths[i],
            [&](runtime::ObjectRef, std::exception_ptr,
                const obs::TraceContext&) { callbacks.fetch_add(1); });
        ASSERT_EQ(admit.status, serve::Server::AdmitStatus::kAccepted);
      }
    }
    server.Drain();
    EXPECT_EQ(callbacks.load(), static_cast<int>(fixture.lengths.size() / 2));
    for (auto& future : futures) {
      EXPECT_NO_THROW(future.get()) << "queued futures fulfilled by Drain";
    }
    auto snap = server.stats();
    EXPECT_EQ(snap.completed, static_cast<int64_t>(fixture.lengths.size()));
    EXPECT_EQ(snap.failed, 0);
  }
}

TEST(ServeStats, QueueWaitPlusExecEqualsEndToEndLatency) {
  serve::ServeStats stats;
  auto t0 = serve::Clock::now();
  stats.RecordEnqueue(t0);
  stats.RecordCompletion(/*latency_us=*/1000.0, /*queue_wait_us=*/700.0,
                         /*exec_us=*/300.0, /*ok=*/true,
                         t0 + std::chrono::milliseconds(1));
  stats.RecordCompletion(2000.0, 1200.0, 800.0, true,
                         t0 + std::chrono::milliseconds(2));
  auto snap = stats.Snapshot();
  EXPECT_DOUBLE_EQ(snap.mean_latency_us, 1500.0);
  EXPECT_DOUBLE_EQ(snap.mean_queue_wait_us, 950.0);
  EXPECT_DOUBLE_EQ(snap.mean_exec_us, 550.0);
  EXPECT_DOUBLE_EQ(snap.max_queue_wait_us, 1200.0);
  EXPECT_DOUBLE_EQ(snap.mean_queue_wait_us + snap.mean_exec_us,
                   snap.mean_latency_us);

  stats.Reset();
  snap = stats.Snapshot();
  EXPECT_DOUBLE_EQ(snap.mean_queue_wait_us, 0.0);
  EXPECT_EQ(snap.arrivals, 0);
}

TEST(ServeStats, ArrivalEwmaTracksGap) {
  serve::ServeStats stats;
  auto t = serve::Clock::now();
  EXPECT_DOUBLE_EQ(stats.MeanInterArrivalMicros(), 0.0) << "no signal yet";
  stats.RecordEnqueue(t);
  EXPECT_DOUBLE_EQ(stats.MeanInterArrivalMicros(), 0.0) << "one arrival";
  for (int i = 1; i <= 50; ++i) {
    stats.RecordEnqueue(t + std::chrono::microseconds(200) * i);
  }
  // Constant 200us spacing: the EWMA settles on exactly that.
  EXPECT_NEAR(stats.MeanInterArrivalMicros(), 200.0, 1e-6);
  auto snap = stats.Snapshot();
  EXPECT_EQ(snap.arrivals, 51);
  EXPECT_NEAR(snap.arrival_rate_rps, 5000.0, 1e-3);
}

// ---- drain-time leak sentinels ------------------------------------------------

// Every byte a served request allocated from the worker allocators must be
// freed once its result is dropped: after Drain with no results held, the
// per-worker live-byte counters read exactly zero. A regression here is a
// data-path leak (a tensor pinned in a register, a batch temporary kept
// past unpack), caught by the counters alone — and by ASan in the CI job
// that runs this binary.
TEST(Memory, DrainReturnsWorkerLiveBytesToZero) {
  std::vector<int64_t> lengths = {9, 9, 5, 5, 12, 3, 9, 7};
  LSTMFixture fixture(lengths, 12, 31, /*with_batched_entry=*/true);
  serve::ServeConfig config;
  config.num_workers = 2;
  config.batch.tensor_batching = true;
  config.batch.bucket_edges = {8, 16};
  serve::Server server(fixture.exec, config);

  std::vector<std::future<runtime::ObjectRef>> futures;
  for (size_t i = 0; i < lengths.size(); ++i) {
    futures.push_back(server.Submit(fixture.ArgsFor(i), lengths[i]));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    ExpectBitIdentical(AsTensor(futures[i].get()), fixture.expected[i], i);
  }
  futures.clear();  // drop every result before the leak check
  server.Drain();

  int workers_seen = 0;
  int64_t peak_across_workers = 0;
  for (const obs::AllocScopeSample& scope : server.MemoryScopes()) {
    if (scope.scope.rfind("worker:", 0) != 0) continue;
    ++workers_seen;
    EXPECT_EQ(scope.live_bytes, 0)
        << scope.scope << " leaked after drain with all results dropped";
    // Batch placement is racy — one worker may have pulled every batch —
    // so activity is asserted across the pool, not per worker.
    peak_across_workers += scope.peak_bytes;
  }
  EXPECT_EQ(workers_seen, 2);
  EXPECT_GT(peak_across_workers, 0)
      << "no worker ever allocated — the sentinel tested nothing";
}

// Continuous runners keep their persistent step arguments (x_t, the active
// mask, the state rows) alive across tenancies, so their drain baseline is
// not zero — it is whatever a warmed-up runner holds. Serving a second,
// identical workload must return live bytes exactly to that baseline:
// states are replaced, never accumulated, and every retired row's slice
// leaves with its request.
TEST(Memory, ContinuousDrainReturnsRunnerLiveBytesToBaseline) {
  schedfuzz::ContinuousHarness harness;
  serve::ServeConfig config;
  serve::Server server(config);
  serve::ModelConfig mc;
  mc.exec = harness.exec;
  mc.batch.continuous = true;
  mc.batch.continuous_slots = 4;
  server.AddModel("lstm", std::move(mc));
  server.Start();

  std::vector<int64_t> lengths = {5, 2, 8, 3, 6, 4};
  auto serve_round = [&](uint64_t seed) {
    support::Rng rng(seed);
    std::vector<std::future<runtime::ObjectRef>> futures;
    for (int64_t len : lengths) {
      NDArray x = models::RandomSequence(len, harness.input_size, rng);
      futures.push_back(server.Submit(
          "lstm",
          {MakeTensor(x), MakeTensor(NDArray::Scalar<int64_t>(len))}, len));
    }
    for (auto& f : futures) f.get();  // results dropped as they land
  };

  auto model_live = [&] {
    for (const obs::AllocScopeSample& scope : server.MemoryScopes()) {
      if (scope.scope == "model:lstm") return scope.live_bytes;
    }
    ADD_FAILURE() << "model scope missing";
    return int64_t{-1};
  };

  // The last future resolves from inside RunStep, a beat before the runner
  // frees its step temporaries — poll until the scope settles before
  // taking the baseline (the post-drain sample needs no such wait).
  auto settled_live = [&] {
    int64_t prev = model_live();
    for (int stable = 0; stable < 5;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      int64_t cur = model_live();
      stable = (cur == prev) ? stable + 1 : 0;
      prev = cur;
    }
    return prev;
  };

  serve_round(41);  // warmup: persistent args and state rows now resident
  int64_t baseline = settled_live();
  EXPECT_GT(baseline, 0) << "a warmed-up runner holds its step arguments";

  serve_round(42);
  server.Drain();
  EXPECT_EQ(model_live(), baseline)
      << "a second workload must not grow the runner's live bytes";
}

TEST(Serve, VMResetAllowsRecycling) {
  LSTMFixture fixture(2);
  vm::VirtualMachine machine(fixture.exec);
  machine.EnableProfiling(true);
  auto a = AsTensor(machine.Invoke("main", fixture.ArgsFor(0)));
  ExpectBitIdentical(a, fixture.expected[0], 0);
  EXPECT_GT(machine.profile().instructions, 0);
  machine.Reset();
  EXPECT_EQ(machine.profile().instructions, 0);
  auto b = AsTensor(machine.Invoke("main", fixture.ArgsFor(1)));
  ExpectBitIdentical(b, fixture.expected[1], 1);
}

}  // namespace
}  // namespace nimble
