// VM tests: individual instructions, control flow, closures, ADTs,
// per-executable dispatch ownership, serialization round-trips, and the
// profiler.
#include <gtest/gtest.h>

#include <sstream>

#include "src/codegen/dispatch.h"
#include "src/core/compiler.h"
#include "src/ir/module.h"
#include "src/op/registry.h"
#include "src/support/rng.h"
#include "src/vm/compiler.h"
#include "src/vm/vm.h"

namespace nimble {
namespace {

using namespace ir;  // NOLINT
using runtime::AsTensor;
using runtime::MakeTensor;
using runtime::NDArray;

/// Compiles a single-function module through the full pipeline.
std::shared_ptr<vm::Executable> CompileMain(Function fn,
                                            Module* mod_out = nullptr) {
  Module mod;
  mod.Add("main", std::move(fn));
  auto result = core::Compile(mod);
  if (mod_out != nullptr) *mod_out = mod;
  return result.executable;
}

float RunScalar(vm::VirtualMachine& machine,
                std::vector<runtime::ObjectRef> args) {
  auto out = machine.Invoke("main", std::move(args));
  return AsTensor(out).data<float>()[0];
}

TEST(VM, ExecutesStraightLineArithmetic) {
  Var x = MakeVar("x", ScalarType(DataType::Float32()));
  auto exec = CompileMain(MakeFunction(
      {x}, op::Call2("multiply", op::Call2("add", x, FloatConst(1.0f)),
                     FloatConst(3.0f))));
  vm::VirtualMachine machine(exec);
  EXPECT_FLOAT_EQ(RunScalar(machine, {MakeTensor(NDArray::Scalar<float>(2.0f))}),
                  9.0f);
}

TEST(VM, IfTakesBothBranches) {
  Var c = MakeVar("c", ScalarType(DataType::Bool()));
  Var a = MakeVar("a", ScalarType(DataType::Float32()));
  auto exec = CompileMain(MakeFunction(
      {c, a}, MakeIf(c, op::Call2("add", a, FloatConst(10.0f)),
                     op::Call2("subtract", a, FloatConst(10.0f)))));
  vm::VirtualMachine machine(exec);
  auto mk_bool = [](bool v) {
    NDArray b = NDArray::Empty({}, DataType::Bool());
    *static_cast<uint8_t*>(b.raw_data()) = v;
    return MakeTensor(b);
  };
  EXPECT_FLOAT_EQ(
      RunScalar(machine, {mk_bool(true), MakeTensor(NDArray::Scalar<float>(1.0f))}),
      11.0f);
  EXPECT_FLOAT_EQ(
      RunScalar(machine, {mk_bool(false), MakeTensor(NDArray::Scalar<float>(1.0f))}),
      -9.0f);
}

TEST(VM, RecursiveLoopAccumulates) {
  // sum(i..n) via tail recursion: tests Invoke, If, integer kernels.
  Module mod;
  Var i = MakeVar("i", ScalarType(DataType::Int64()));
  Var n = MakeVar("n", ScalarType(DataType::Int64()));
  Var acc = MakeVar("acc", ScalarType(DataType::Int64()));
  GlobalVar loop = MakeGlobalVar("loop");
  Expr body = MakeIf(op::Call2("less", i, n),
                     MakeCall(loop, {op::Call2("add", i, IntConst(1)), n,
                                     op::Call2("add", acc, i)}),
                     acc);
  mod.Add("loop",
          MakeFunction({i, n, acc}, body, ScalarType(DataType::Int64())));
  Var mn = MakeVar("n", ScalarType(DataType::Int64()));
  mod.Add("main", MakeFunction({mn}, MakeCall(loop, {IntConst(0), mn,
                                                     IntConst(0)})));
  auto exec = core::Compile(mod).executable;
  vm::VirtualMachine machine(exec);
  auto out = machine.Invoke("main", {MakeTensor(NDArray::Scalar<int64_t>(10))});
  EXPECT_EQ(AsTensor(out).data<int64_t>()[0], 45);
}

TEST(VM, TuplesAndProjections) {
  Var x = MakeVar("x", ScalarType(DataType::Float32()));
  Expr pair = MakeTuple({op::Call2("add", x, FloatConst(1.0f)),
                         op::Call2("add", x, FloatConst(2.0f))});
  Var t = MakeVar("t");
  auto exec = CompileMain(MakeFunction(
      {x}, MakeLet(t, pair,
                   op::Call2("multiply", MakeTupleGetItem(t, 0),
                             MakeTupleGetItem(t, 1)))));
  vm::VirtualMachine machine(exec);
  EXPECT_FLOAT_EQ(RunScalar(machine, {MakeTensor(NDArray::Scalar<float>(1.0f))}),
                  6.0f);
}

TEST(VM, MatchDispatchesOnConstructor) {
  Module mod;
  const TypeData& data = mod.DefineADT(
      "Shape2", {{"Circle", {ScalarType(DataType::Float32())}}, {"Square", {ScalarType(DataType::Float32())}}});
  Var s = MakeVar("s", ADTType("Shape2"));
  Var r = MakeVar("r"), w = MakeVar("w");
  Expr m = MakeMatch(
      s, {MatchClause{data.constructors[0], {r},
                      op::Call2("multiply", r, FloatConst(3.0f))},
          MatchClause{data.constructors[1], {w},
                      op::Call2("multiply", w, w)}});
  mod.Add("main", MakeFunction({s}, m));
  auto exec = core::Compile(mod).executable;
  vm::VirtualMachine machine(exec);
  auto circle = runtime::MakeADT(0, {MakeTensor(NDArray::Scalar<float>(2.0f))});
  auto square = runtime::MakeADT(1, {MakeTensor(NDArray::Scalar<float>(4.0f))});
  EXPECT_FLOAT_EQ(RunScalar(machine, {circle}), 6.0f);
  EXPECT_FLOAT_EQ(RunScalar(machine, {square}), 16.0f);
}

TEST(VM, ClosuresCaptureEnvironment) {
  // main(x) = (fn(y) -> y + x)(10)
  Var x = MakeVar("x", ScalarType(DataType::Float32()));
  Var y = MakeVar("y", ScalarType(DataType::Float32()));
  Expr lambda = MakeFunction({y}, op::Call2("add", y, x));
  Var f = MakeVar("f");
  auto exec = CompileMain(MakeFunction(
      {x}, MakeLet(f, lambda, MakeCall(f, {FloatConst(10.0f)}))));
  vm::VirtualMachine machine(exec);
  EXPECT_FLOAT_EQ(RunScalar(machine, {MakeTensor(NDArray::Scalar<float>(5.0f))}),
                  15.0f);
}

TEST(VM, DynamicOutputOpAllocatesAtRuntime) {
  // arange(0, n, 1): output size is data-dependent.
  Var n = MakeVar("n", ScalarType(DataType::Int64()));
  auto exec = CompileMain(
      MakeFunction({n}, op::Call3("arange", IntConst(0), n, IntConst(1))));
  vm::VirtualMachine machine(exec);
  for (int64_t len : {1, 4, 9}) {
    auto out = machine.Invoke("main", {MakeTensor(NDArray::Scalar<int64_t>(len))});
    const NDArray& arr = AsTensor(out);
    ASSERT_EQ(arr.num_elements(), len);
    EXPECT_EQ(arr.data<int64_t>()[len - 1], len - 1);
  }
}

TEST(VM, UpperBoundOpWithPreciseSlice) {
  // nms + slice_rows: upper-bound allocation, then slice to the true size.
  Var boxes = MakeVar("b", TensorType({3, 5}));
  Var nms = MakeVar("nms");
  Expr call = op::Call1("nn.nms", boxes, Attrs().Set("iou_threshold", 0.5));
  Expr body = MakeLet(
      nms, call,
      op::Call2("slice_rows", MakeTupleGetItem(nms, 0), MakeTupleGetItem(nms, 1)));
  auto exec = CompileMain(MakeFunction({boxes}, body));
  vm::VirtualMachine machine(exec);
  NDArray input = NDArray::FromVector<float>(
      {0.9f, 0, 0, 10, 10, 0.8f, 1, 1, 11, 11, 0.7f, 50, 50, 60, 60}, {3, 5});
  auto out = machine.Invoke("main", {MakeTensor(input)});
  EXPECT_EQ(AsTensor(out).shape(), (runtime::ShapeVec{2, 5}))
      << "output must be sliced to the exact NMS survivor count";
}

TEST(VM, WrongArityRejected) {
  Var x = MakeVar("x", ScalarType(DataType::Float32()));
  auto exec = CompileMain(MakeFunction({x}, x));
  vm::VirtualMachine machine(exec);
  EXPECT_THROW(machine.Invoke("main", {}), Error);
  EXPECT_THROW(machine.Invoke("nope", {}), Error);
}

TEST(VM, ProfilerSplitsKernelTime) {
  Var x = MakeVar("x", TensorType({64, 64}));
  Var w = MakeVar("w", TensorType({64, 64}));
  auto exec = CompileMain(MakeFunction({x, w}, op::Call2("nn.dense", x, w)));
  vm::VirtualMachine machine(exec);
  machine.EnableProfiling(true);
  support::Rng rng(1);
  NDArray xv = NDArray::Empty({64, 64}, DataType::Float32());
  NDArray wv = NDArray::Empty({64, 64}, DataType::Float32());
  xv.FillUniform(rng);
  wv.FillUniform(rng);
  machine.Invoke("main", {MakeTensor(xv), MakeTensor(wv)});
  const auto& prof = machine.profile();
  EXPECT_GT(prof.instructions, 0);
  EXPECT_GT(prof.kernel_nanos, 0);
  EXPECT_GT(prof.total_nanos, prof.kernel_nanos);
  EXPECT_GT(prof.per_opcode[static_cast<size_t>(vm::Opcode::kInvokePacked)].count,
            0);
}

// ---- per-executable dispatch ownership ------------------------------------------

/// Compiles x[3,4] · w[5,4]^T with the given number of dispatch variants.
std::shared_ptr<vm::Executable> CompileDense(int variants) {
  Var x = MakeVar("x", TensorType({3, 4}));
  Var w = MakeVar("w", TensorType({5, 4}));
  Module mod;
  mod.Add("main", MakeFunction({x, w}, op::Call2("nn.dense", x, w)));
  core::CompileOptions opts;
  opts.dense_dispatch_variants = variants;
  return core::Compile(mod, opts).executable;
}

TEST(VM, DenseDispatchReadsTheExecutablesTable) {
  auto exec_full = CompileDense(8);
  auto exec_none = CompileDense(1);
  EXPECT_EQ(exec_full->dispatch_table.num_variants(), 8);
  EXPECT_EQ(exec_none->dispatch_table.num_variants(), 1)
      << "compiling one executable must not reconfigure another";

  support::Rng rng(3);
  NDArray x = NDArray::Empty({3, 4}, runtime::DataType::Float32());
  NDArray w = NDArray::Empty({5, 4}, runtime::DataType::Float32());
  for (int64_t i = 0; i < x.num_elements(); ++i)
    x.data<float>()[i] = rng.Uniform(-1.0f, 1.0f);
  for (int64_t i = 0; i < w.num_elements(); ++i)
    w.data<float>()[i] = rng.Uniform(-1.0f, 1.0f);

  vm::VirtualMachine vm_full(exec_full);
  vm::VirtualMachine vm_none(exec_none);
  auto out_full =
      AsTensor(vm_full.Invoke("main", {MakeTensor(x), MakeTensor(w)}));
  auto out_none =
      AsTensor(vm_none.Invoke("main", {MakeTensor(x), MakeTensor(w)}));

  // M=3 hits residue 3: specialized under full dispatch, generic fallback
  // with one variant — each accounted in its own executable's table.
  EXPECT_GT(exec_full->dispatch_table.stats().specialized_calls, 0);
  EXPECT_EQ(exec_full->dispatch_table.stats().fallback_calls, 0);
  EXPECT_GT(exec_none->dispatch_table.stats().fallback_calls, 0);
  EXPECT_EQ(exec_none->dispatch_table.stats().specialized_calls, 0);
  // ...and neither executable's calls leaked into the other's table.
  EXPECT_EQ(exec_full->dispatch_table.stats().fallback_calls, 0);
  EXPECT_EQ(exec_none->dispatch_table.stats().specialized_calls, 0);
  // Both dispatch paths compute the same thing (up to accumulation-order
  // ulps — the specialized and generic kernels tile differently).
  for (int64_t i = 0; i < out_full.num_elements(); ++i) {
    EXPECT_NEAR(out_full.data<float>()[i], out_none.data<float>()[i], 1e-5);
  }
}

TEST(VM, RebindSwitchesExecutables) {
  Var x = MakeVar("x", ScalarType(DataType::Float32()));
  auto exec_add = CompileMain(
      MakeFunction({x}, op::Call2("add", x, FloatConst(1.0f))));
  Var y = MakeVar("y", ScalarType(DataType::Float32()));
  auto exec_mul = CompileMain(
      MakeFunction({y}, op::Call2("multiply", y, FloatConst(4.0f))));

  vm::VirtualMachine machine(exec_add);
  EXPECT_FLOAT_EQ(RunScalar(machine, {MakeTensor(NDArray::Scalar<float>(2.0f))}),
                  3.0f);
  machine.Rebind(exec_mul);
  EXPECT_EQ(machine.executable_ptr().get(), exec_mul.get());
  EXPECT_FLOAT_EQ(RunScalar(machine, {MakeTensor(NDArray::Scalar<float>(2.0f))}),
                  8.0f);
  machine.Rebind(exec_add);
  EXPECT_FLOAT_EQ(RunScalar(machine, {MakeTensor(NDArray::Scalar<float>(2.0f))}),
                  3.0f);
  EXPECT_THROW(machine.Rebind(nullptr), Error);
}

TEST(VM, UnboundVMRejectsInvoke) {
  vm::VirtualMachine machine(nullptr);
  EXPECT_THROW(machine.Invoke("main", {}), Error);
}

// ---- instruction encoding / serialization --------------------------------------

TEST(Bytecode, OpcodeNamesCoverTableA1) {
  // Exactly the 20 instructions of Table A.1.
  for (int i = 0; i < 20; ++i) {
    EXPECT_STRNE(vm::OpcodeName(static_cast<vm::Opcode>(i)), "<bad>");
  }
}

TEST(Bytecode, DevicePackingRoundtrip) {
  auto dev = runtime::Device::SimGPU(3);
  EXPECT_EQ(vm::UnpackDevice(vm::PackDevice(dev)), dev);
  EXPECT_EQ(vm::UnpackDevice(vm::PackDevice(runtime::Device::CPU())),
            runtime::Device::CPU());
}

TEST(Serialization, RoundtripPreservesEverything) {
  Var x = MakeVar("x", TensorType({Dim::Any(), Dim::Static(2)}));
  Var y = MakeVar("y", TensorType({1, 2}));
  auto exec = CompileMain(MakeFunction(
      {x, y}, op::Call2("concat", x, y, Attrs().Set("axis", 0))));

  std::stringstream buffer;
  exec->Save(buffer);
  auto reloaded = vm::Executable::Load(buffer);

  ASSERT_EQ(reloaded->functions.size(), exec->functions.size());
  for (size_t f = 0; f < exec->functions.size(); ++f) {
    const auto& a = exec->functions[f];
    const auto& b = reloaded->functions[f];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.num_params, b.num_params);
    EXPECT_EQ(a.register_file_size, b.register_file_size);
    ASSERT_EQ(a.instructions.size(), b.instructions.size());
    for (size_t i = 0; i < a.instructions.size(); ++i) {
      EXPECT_TRUE(a.instructions[i] == b.instructions[i]) << "instruction " << i;
    }
  }
  ASSERT_EQ(reloaded->packed.size(), exec->packed.size());
  for (size_t i = 0; i < exec->packed.size(); ++i) {
    EXPECT_EQ(reloaded->packed[i].name, exec->packed[i].name);
    EXPECT_TRUE(reloaded->packed[i].attrs == exec->packed[i].attrs);
  }
  ASSERT_EQ(reloaded->constants.size(), exec->constants.size());
  EXPECT_EQ(reloaded->dispatch_table.num_variants(),
            exec->dispatch_table.num_variants())
      << "dispatch configuration travels inside the executable";
}

TEST(Serialization, DispatchConfigSurvivesRoundtrip) {
  Var x = MakeVar("x", ScalarType(DataType::Float32()));
  auto exec = CompileMain(
      MakeFunction({x}, op::Call2("add", x, FloatConst(1.0f))));
  exec->dispatch_table.Configure(2);
  std::stringstream buffer;
  exec->Save(buffer);
  auto reloaded = vm::Executable::Load(buffer);
  EXPECT_EQ(reloaded->dispatch_table.num_variants(), 2)
      << "a loaded executable serves with the policy it was compiled with";
}

TEST(Serialization, DenseConfigSurvivesRoundtrip) {
  Var x = MakeVar("x", ScalarType(DataType::Float32()));
  auto exec = CompileMain(
      MakeFunction({x}, op::Call2("add", x, FloatConst(1.0f))));
  exec->dense_config = codegen::DenseConfig{64, 128};
  exec->dense_config_tuned = true;
  std::stringstream buffer;
  exec->Save(buffer);
  auto reloaded = vm::Executable::Load(buffer);
  EXPECT_EQ(reloaded->dense_config, (codegen::DenseConfig{64, 128}))
      << "a v6 executable carries its tuner-chosen blocking factors";
  EXPECT_TRUE(reloaded->dense_config_tuned);
  // Default (untuned) executables roundtrip the default config too.
  auto plain = CompileMain(
      MakeFunction({x}, op::Call2("add", x, FloatConst(1.0f))));
  std::stringstream buffer2;
  plain->Save(buffer2);
  auto reloaded2 = vm::Executable::Load(buffer2);
  EXPECT_EQ(reloaded2->dense_config, codegen::DenseConfig{});
  EXPECT_FALSE(reloaded2->dense_config_tuned);
}

TEST(Serialization, ReloadedExecutableRuns) {
  Var x = MakeVar("x", ScalarType(DataType::Float32()));
  auto exec = CompileMain(
      MakeFunction({x}, op::Call2("add", x, FloatConst(2.5f))));
  std::stringstream buffer;
  exec->Save(buffer);
  vm::VirtualMachine machine(vm::Executable::Load(buffer));
  EXPECT_FLOAT_EQ(RunScalar(machine, {MakeTensor(NDArray::Scalar<float>(1.0f))}),
                  3.5f);
}

TEST(Serialization, RejectsGarbage) {
  std::stringstream buffer;
  buffer << "not an executable";
  EXPECT_THROW(vm::Executable::Load(buffer), Error);
}

TEST(Serialization, ConstantsSurviveWithWeights) {
  NDArray weight = NDArray::FromVector<float>({1, 2, 3, 4}, {4});
  Var x = MakeVar("x", TensorType(std::vector<int64_t>{4}));
  auto exec = CompileMain(
      MakeFunction({x}, op::Call2("add", x, MakeConstant(weight))));
  std::stringstream buffer;
  exec->Save(buffer);
  auto reloaded = vm::Executable::Load(buffer);
  bool found = false;
  for (const auto& c : reloaded->constants) {
    if (c.num_elements() == 4 && c.data<float>()[2] == 3.0f) found = true;
  }
  EXPECT_TRUE(found) << "weights travel inside the executable";
}

TEST(Disassemble, MentionsPackedCallsAndInstructions) {
  Var x = MakeVar("x", TensorType(std::vector<int64_t>{2}));
  auto exec = CompileMain(MakeFunction({x}, op::Call1("sigmoid", x)));
  std::string text = exec->Disassemble();
  EXPECT_NE(text.find("InvokePacked"), std::string::npos);
  EXPECT_NE(text.find("sigmoid"), std::string::npos);
  EXPECT_NE(text.find("func @main"), std::string::npos);
}

TEST(VMRegisters, KillRecyclesRegisters) {
  // A long chain of dead intermediates should not need a register each:
  // memory.kill allows the compiler to recycle them.
  Var x = MakeVar("x", TensorType(std::vector<int64_t>{8}));
  Expr e = x;
  for (int i = 0; i < 20; ++i) e = op::Call1("sigmoid", e);
  auto exec = CompileMain(MakeFunction({x}, e));
  const auto& fn = exec->functions[exec->FunctionIndex("main")];
  EXPECT_LT(fn.register_file_size, 40)
      << "register recycling via kill should bound the frame size";
}

}  // namespace
}  // namespace nimble
