// Continuous (iteration-level) batching: the persistent slot map, the
// @main_step step twin, and the end-to-end StepRunner serving path.
//
// The load-bearing property is bit-identity: a request's result must be
// byte-for-byte the same whether it ran alone on one VirtualMachine, inside
// a closed batch, or spliced into a half-full persistent batch next to
// strangers at an arbitrary step boundary. These tests pin that down three
// ways:
//   - directly, by hand-driving @main_step through mid-flight retires and
//     splices and comparing every row against @main (StepTwin tests);
//   - end to end, by replaying fixed-seed randomized schedules from
//     tests/sched_fuzz.h through a continuous Server and comparing against
//     sequential execution (the same driver tests/sched_harness.cc sweeps
//     with thousands of seeds in nightly CI);
//   - structurally, via the SlotMap invariants (no leak, no double retire,
//     FIFO admission order) and the stats accounting that the harness
//     cross-checks after every schedule.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/batch/slot_map.h"
#include "src/batch/step_runner.h"
#include "src/core/compiler.h"
#include "src/models/lstm.h"
#include "src/models/workloads.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/object.h"
#include "src/serve/exec_cache.h"
#include "src/serve/server.h"
#include "src/support/logging.h"
#include "src/support/rng.h"
#include "src/vm/executable.h"
#include "src/vm/vm.h"
#include "tests/continuous_harness.h"
#include "tests/sched_fuzz.h"

namespace nimble {
namespace {

using runtime::AsTensor;
using runtime::DataType;
using runtime::MakeTensor;
using runtime::NDArray;

serve::Request MakeDummyRequest(int64_t id) {
  serve::Request r;
  r.id = id;
  return r;
}

// ---- SlotMap invariants -----------------------------------------------------

TEST(SlotMap, SpliceFillsLowestFreeSlotAndRetireFrees) {
  batch::SlotMap map(4);
  EXPECT_TRUE(map.Empty());
  EXPECT_FALSE(map.Full());
  EXPECT_EQ(map.num_slots(), 4);

  EXPECT_EQ(map.Splice(MakeDummyRequest(10), 3), 0);
  EXPECT_EQ(map.Splice(MakeDummyRequest(11), 1), 1);
  EXPECT_EQ(map.Splice(MakeDummyRequest(12), 5), 2);
  EXPECT_EQ(map.occupied(), 3);
  EXPECT_TRUE(map.IsOccupied(1));
  EXPECT_FALSE(map.IsOccupied(3));

  // Freeing the middle slot makes it the lowest free slot again.
  serve::Request retired = map.Retire(1);
  EXPECT_EQ(retired.id, 11);
  EXPECT_EQ(map.occupied(), 2);
  EXPECT_EQ(map.Splice(MakeDummyRequest(13), 2), 1);
  EXPECT_EQ(map.Splice(MakeDummyRequest(14), 2), 3);
  EXPECT_TRUE(map.Full());

  EXPECT_EQ(map.counters().splices, 5u);
  EXPECT_EQ(map.counters().retires, 1u);
  EXPECT_EQ(map.counters().max_occupancy, 4);

  for (int64_t i = 0; i < 4; ++i) map.Retire(i);
  EXPECT_TRUE(map.Empty());
  EXPECT_EQ(map.counters().retires, 5u);
}

TEST(SlotMap, DoubleRetireAndMisuseThrow) {
  batch::SlotMap map(2);
  int64_t slot = map.Splice(MakeDummyRequest(1), 2);
  map.Retire(slot);
  // Double retire: the slot is no longer occupied.
  EXPECT_THROW(map.Retire(slot), nimble::Error);
  // Retiring a never-occupied slot and out-of-range access also die.
  EXPECT_THROW(map.Retire(1), nimble::Error);
  EXPECT_THROW(map.At(7), nimble::Error);
  EXPECT_THROW(map.At(-1), nimble::Error);
  // Zero-length requests have no step to run.
  EXPECT_THROW(map.Splice(MakeDummyRequest(2), 0), nimble::Error);
  // Overfull: both slots taken, a third splice must throw, not overwrite.
  map.Splice(MakeDummyRequest(3), 1);
  map.Splice(MakeDummyRequest(4), 1);
  EXPECT_THROW(map.Splice(MakeDummyRequest(5), 1), nimble::Error);
}

TEST(SlotMap, AdmitSeqIsFifoAcrossInterleavedRetires) {
  batch::SlotMap map(3);
  // Interleave splices and retires so slot indices get reused out of
  // order; admission sequence numbers must still be strictly increasing
  // in splice order (the FIFO witness the runner relies on).
  uint64_t last_seq = 0;
  auto splice_and_check = [&](int64_t id) {
    int64_t slot = map.Splice(MakeDummyRequest(id), 1);
    uint64_t seq = map.At(slot).admit_seq;
    EXPECT_GT(seq, last_seq) << "admission out of FIFO order at id " << id;
    last_seq = seq;
    return slot;
  };
  int64_t a = splice_and_check(1);
  int64_t b = splice_and_check(2);
  splice_and_check(3);
  map.Retire(a);
  splice_and_check(4);  // reuses slot a, must get a LATER seq
  map.Retire(b);
  splice_and_check(5);
  while (!map.Empty()) {
    for (int64_t i = 0; i < map.num_slots(); ++i) {
      if (map.IsOccupied(i)) map.Retire(i);
    }
  }
}

// ---- @main_step driven by hand ---------------------------------------------

// Hand-rolls the runner's host loop against a raw VM: three slots, rows
// retiring at different steps, and a new request spliced into a freed slot
// mid-flight with zeroed state rows. Every result row must be bit-identical
// to @main on that request alone, and a retired row's state must stay
// frozen bit-for-bit afterwards (the `where` mask really is exact).
TEST(StepTwin, MidFlightSpliceIsBitIdenticalToSequential) {
  models::LSTMConfig config;
  config.input_size = 8;
  config.hidden_size = 10;
  config.num_layers = 2;
  config.seed = 99;
  config.emit_batched = true;
  auto model = models::BuildLSTM(config);
  ASSERT_EQ(model.batched_spec.step_function, "main_step");
  ASSERT_EQ(model.batched_spec.result_state, 2 * (config.num_layers - 1));
  core::CompileOptions opts;
  opts.batched_entries = {model.batched_spec};
  auto exec = core::Compile(model.module, opts).executable;
  vm::VirtualMachine vm(exec);

  const int64_t B = 3, D = 8, H = 10;
  const int64_t num_states = 2 * config.num_layers;
  support::Rng rng(4242);
  // Slot 0: length 3. Slot 1: length 1 (retires after the first step, then
  // a length-2 request splices in at step 1). Slot 2: length 4.
  NDArray in_a = models::RandomSequence(3, D, rng);
  NDArray in_b = models::RandomSequence(1, D, rng);
  NDArray in_c = models::RandomSequence(4, D, rng);
  NDArray in_d = models::RandomSequence(2, D, rng);  // spliced mid-flight

  auto run_main = [&](const NDArray& x, int64_t len) {
    return AsTensor(vm.Invoke(
        "main", {MakeTensor(x), MakeTensor(NDArray::Scalar<int64_t>(len))}));
  };
  NDArray want_a = run_main(in_a, 3);
  NDArray want_b = run_main(in_b, 1);
  NDArray want_c = run_main(in_c, 4);
  NDArray want_d = run_main(in_d, 2);

  auto zeros = [](runtime::ShapeVec shape, DataType dtype) {
    NDArray arr = NDArray::Empty(std::move(shape), dtype);
    std::memset(arr.raw_data(), 0, arr.nbytes());
    return arr;
  };
  NDArray x_t = zeros({B, D}, DataType::Float32());
  NDArray active = zeros({B, 1}, DataType::Int64());
  std::vector<NDArray> states;
  for (int64_t s = 0; s < num_states; ++s) {
    states.push_back(zeros({B, H}, DataType::Float32()));
  }

  // Per-slot tenancy across the 5 host steps of this script.
  struct Tenant {
    const NDArray* seq = nullptr;
    int64_t pos = 0;
    int64_t len = 0;
  };
  std::vector<Tenant> slots(B);
  slots[0] = {&in_a, 0, 3};
  slots[1] = {&in_b, 0, 1};
  slots[2] = {&in_c, 0, 4};

  auto zero_state_rows = [&](int64_t slot) {
    for (NDArray& st : states) {
      std::memset(st.data<float>() + slot * H, 0,
                  static_cast<size_t>(H) * sizeof(float));
    }
  };
  auto result_row = [&](int64_t slot) {
    NDArray out = NDArray::Empty({1, H}, DataType::Float32());
    std::memcpy(out.data<float>(),
                states[static_cast<size_t>(model.batched_spec.result_state)]
                        .data<float>() +
                    slot * H,
                static_cast<size_t>(H) * sizeof(float));
    return out;
  };
  auto expect_rows_equal = [&](const NDArray& got, const NDArray& want,
                               const char* what) {
    ASSERT_EQ(got.num_elements(), want.num_elements());
    const float* pg = got.data<float>();
    const float* pw = want.data<float>();
    for (int64_t j = 0; j < got.num_elements(); ++j) {
      EXPECT_EQ(pg[j], pw[j]) << what << " diverged at element " << j;
    }
  };

  for (int step = 0; step < 5; ++step) {
    if (step == 1) {
      // Slot 1 retired last step; splice the new tenant with zeroed rows —
      // exactly what StepRunner::Admit does.
      slots[1] = {&in_d, 0, 2};
      zero_state_rows(1);
    }
    float* xp = x_t.data<float>();
    int64_t* ap = active.data<int64_t>();
    for (int64_t i = 0; i < B; ++i) {
      if (slots[i].seq != nullptr && slots[i].pos < slots[i].len) {
        std::memcpy(xp + i * D, slots[i].seq->data<float>() + slots[i].pos * D,
                    static_cast<size_t>(D) * sizeof(float));
        ap[i] = 1;
      } else {
        std::memset(xp + i * D, 0, static_cast<size_t>(D) * sizeof(float));
        ap[i] = 0;
      }
    }
    std::vector<runtime::ObjectRef> args{MakeTensor(x_t), MakeTensor(active)};
    for (NDArray& st : states) args.push_back(MakeTensor(st));
    runtime::ObjectRef out = vm.Invoke("main_step", args);
    runtime::ADTObj* tuple = runtime::AsADT(out);
    ASSERT_EQ(tuple->fields.size(), static_cast<size_t>(num_states));
    for (int64_t s = 0; s < num_states; ++s) {
      states[static_cast<size_t>(s)] =
          AsTensor(tuple->fields[static_cast<size_t>(s)]);
    }
    for (int64_t i = 0; i < B; ++i) {
      if (slots[i].seq == nullptr) continue;
      if (++slots[i].pos >= slots[i].len) {
        NDArray got = result_row(i);
        if (slots[i].seq == &in_a) expect_rows_equal(got, want_a, "slot a");
        if (slots[i].seq == &in_b) expect_rows_equal(got, want_b, "slot b");
        if (slots[i].seq == &in_c) expect_rows_equal(got, want_c, "slot c");
        if (slots[i].seq == &in_d) expect_rows_equal(got, want_d, "slot d");
        slots[i].seq = nullptr;  // retire: row goes inactive
      }
    }
  }
  for (int64_t i = 0; i < B; ++i) {
    EXPECT_EQ(slots[i].seq, nullptr) << "slot " << i << " never finished";
  }
  // Everything retired by the end of step 3, so step 4 ran with every row
  // inactive — and the freeze must have been exact: the retired rows still
  // hold their results bit for bit.
  expect_rows_equal(result_row(0), want_a, "slot a after idle step");
  expect_rows_equal(result_row(1), want_d, "slot d after idle step");
  expect_rows_equal(result_row(2), want_c, "slot c after idle step");
}

// ---- end-to-end: randomized schedules through the server --------------------

TEST(Continuous, FixedSeedSchedulesAreBitIdenticalAcrossFlavors) {
  schedfuzz::ContinuousHarness harness(/*hidden_size=*/12, /*num_layers=*/1,
                                       /*weight_seed=*/7);
  for (auto flavor :
       {schedfuzz::ArrivalFlavor::kPoisson, schedfuzz::ArrivalFlavor::kBursty,
        schedfuzz::ArrivalFlavor::kAdversarial}) {
    for (uint64_t seed : {11u, 29u}) {
      auto schedule = schedfuzz::MakeSchedule(seed, /*num_requests=*/24,
                                              /*max_len=*/12, flavor);
      EXPECT_EQ(harness.RunSchedule(schedule, /*num_slots=*/4), "");
    }
  }
}

TEST(Continuous, TwoLayerModelAndSingleSlotDegenerateCase) {
  // num_slots=1 degenerates to sequential serving through the step loop —
  // the splice/retire machinery with no concurrency to hide behind.
  schedfuzz::ContinuousHarness harness(/*hidden_size=*/10, /*num_layers=*/2,
                                       /*weight_seed=*/13);
  auto schedule = schedfuzz::MakeSchedule(5, /*num_requests=*/10,
                                          /*max_len=*/8,
                                          schedfuzz::ArrivalFlavor::kPoisson);
  EXPECT_EQ(harness.RunSchedule(schedule, /*num_slots=*/1), "");
  // And wide: more slots than requests in flight.
  auto burst = schedfuzz::MakeSchedule(6, /*num_requests=*/12, /*max_len=*/8,
                                       schedfuzz::ArrivalFlavor::kBursty);
  EXPECT_EQ(harness.RunSchedule(burst, /*num_slots=*/8), "");
}

// ---- stats & observability --------------------------------------------------

TEST(Continuous, StatsReportSlotOccupancyAndZeroPadding) {
  schedfuzz::ContinuousHarness harness;
  serve::ServeConfig config;
  serve::Server server(config);
  serve::ModelConfig mc;
  mc.exec = harness.exec;
  mc.batch.continuous = true;
  mc.batch.continuous_slots = 4;
  server.AddModel("lstm", std::move(mc));
  server.Start();

  support::Rng rng(77);
  std::vector<std::future<runtime::ObjectRef>> futures;
  std::vector<NDArray> inputs;
  std::vector<int64_t> lengths = {5, 1, 9, 3, 7, 2};
  for (int64_t len : lengths) {
    inputs.push_back(models::RandomSequence(len, harness.input_size, rng));
    futures.push_back(server.Submit(
        "lstm",
        {MakeTensor(inputs.back()), MakeTensor(NDArray::Scalar<int64_t>(len))},
        len));
  }
  for (auto& f : futures) f.get();
  server.Drain();

  auto snap = server.stats("lstm");
  EXPECT_EQ(snap.completed, static_cast<int64_t>(lengths.size()));
  EXPECT_EQ(snap.splices, static_cast<int64_t>(lengths.size()));
  EXPECT_GT(snap.continuous_steps, 0);
  EXPECT_EQ(snap.slot_count, 4);
  // The persistent batch never packs or pads: padding is zero by
  // construction, and idle-slot waste is reported as its own number.
  EXPECT_EQ(snap.packed_batches, 0);
  EXPECT_EQ(snap.padded_elements, 0);
  EXPECT_EQ(snap.padding_waste, 0.0);
  int64_t total_len = 0;
  for (int64_t len : lengths) total_len += len;
  EXPECT_EQ(snap.continuous_row_steps - snap.continuous_idle_row_steps,
            total_len);
  EXPECT_GT(snap.mean_slot_occupancy, 0.0);
  EXPECT_LE(snap.mean_slot_occupancy, 4.0);
  // The human-readable rendering mentions the continuous counters.
  EXPECT_NE(snap.ToString().find("continuous"), std::string::npos);
  // Aggregate stats got the same completions.
  EXPECT_EQ(server.stats().completed, static_cast<int64_t>(lengths.size()));
}

TEST(Continuous, TraceCarriesSlotAndStepSpanOfTheResidency) {
  schedfuzz::ContinuousHarness harness;
  serve::ServeConfig config;
  serve::Server server(config);
  serve::ModelConfig mc;
  mc.exec = harness.exec;
  mc.batch.continuous = true;
  mc.batch.continuous_slots = 2;
  server.AddModel("lstm", std::move(mc));
  server.Start();

  support::Rng rng(99);
  const int64_t length = 6;
  NDArray x = models::RandomSequence(length, harness.input_size, rng);
  std::promise<obs::TraceContext> traced;
  auto admit = server.TrySubmitCallback(
      "lstm", {MakeTensor(x), MakeTensor(NDArray::Scalar<int64_t>(length))},
      length,
      [&traced](runtime::ObjectRef, std::exception_ptr,
                const obs::TraceContext& trace) {
        traced.set_value(trace);
      });
  ASSERT_TRUE(admit.accepted());
  obs::TraceContext trace = traced.get_future().get();
  server.Drain();

  // The continuous detail rides on the trace as extra fields, not new span
  // names: slot index, splice/retire step seqs, and the derived residency.
  EXPECT_TRUE(trace.continuous);
  EXPECT_GE(trace.slot, 0);
  EXPECT_LT(trace.slot, 2);
  EXPECT_GE(trace.splice_step, 0);
  EXPECT_EQ(trace.retire_step - trace.splice_step + 1, length);
  EXPECT_EQ(trace.steps_resident(), length);
  EXPECT_FALSE(trace.packed) << "the continuous path never packs";

  // The step means and the journal surface the same run.
  auto snap = server.stats("lstm");
  EXPECT_GT(snap.mean_step_duration_us, 0.0);
  EXPECT_GE(snap.mean_splice_wait_us, 0.0);
  auto views = server.continuous_models();
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0].name, "lstm");
  EXPECT_EQ(views[0].num_slots, 2);
  ASSERT_NE(views[0].journal, nullptr);
  EXPECT_EQ(views[0].journal->steps_recorded(), snap.continuous_steps);
}

// ---- registration-time rejection -------------------------------------------

TEST(Continuous, AddModelRejectsExecutableWithoutStepTwin) {
  // emit_batched=false: no batched spec at all, so no step twin either.
  models::LSTMConfig config;
  config.input_size = 8;
  config.hidden_size = 10;
  config.emit_batched = false;
  auto model = models::BuildLSTM(config);
  auto exec = core::Compile(model.module, {}).executable;

  serve::Server server{serve::ServeConfig{}};
  serve::ModelConfig mc;
  mc.exec = exec;
  mc.batch.continuous = true;
  EXPECT_THROW(server.AddModel("no_twin", std::move(mc)), nimble::Error);
}

TEST(Continuous, AddModelRejectsSpecWithEmptyStepFunction) {
  // Batched twin present but the step twin explicitly absent: the packed
  // path would work, the continuous path must refuse.
  models::LSTMConfig config;
  config.input_size = 8;
  config.hidden_size = 10;
  config.emit_batched = true;
  auto model = models::BuildLSTM(config);
  vm::BatchedEntrySpec spec = model.batched_spec;
  spec.step_function.clear();
  core::CompileOptions opts;
  opts.batched_entries = {spec};
  auto exec = core::Compile(model.module, opts).executable;

  serve::Server server{serve::ServeConfig{}};
  serve::ModelConfig mc;
  mc.exec = exec;
  mc.batch.continuous = true;
  EXPECT_THROW(server.AddModel("no_step", std::move(mc)), nimble::Error);
}

TEST(Continuous, AddModelRejectsContinuousWithExecCache) {
  // The shape-bucket cache is a padded-path optimization; a continuous
  // model never packs, so combining them is a configuration error.
  models::LSTMConfig config;
  config.input_size = 8;
  config.hidden_size = 10;
  config.emit_batched = true;
  auto model = models::BuildLSTM(config);
  core::CompileOptions opts;
  opts.batched_entries = {model.batched_spec};
  auto exec = core::Compile(model.module, opts).executable;

  auto cache = std::make_shared<serve::ExecCache>(
      [exec](int64_t, int64_t, const codegen::DenseConfig&) { return exec; },
      serve::ExecCacheConfig{});
  serve::Server server{serve::ServeConfig{}};
  serve::ModelConfig mc;
  mc.exec = exec;
  mc.batch.continuous = true;
  mc.batch.tensor_batching = true;
  mc.exec_cache = cache;
  EXPECT_THROW(server.AddModel("cached", std::move(mc)), nimble::Error);
}

TEST(Continuous, AnalyzeContinuousRejectsVariantExecutables) {
  models::LSTMConfig config;
  config.input_size = 8;
  config.hidden_size = 10;
  config.emit_batched = true;
  auto model = models::BuildLSTM(config);
  core::CompileOptions opts;
  opts.batched_entries = {model.batched_spec};
  opts.specialize_length = 6;
  opts.specialize_batch = 2;
  auto variant = core::Compile(model.module, opts).executable;
  ASSERT_TRUE(variant->variant.is_variant());
  batch::ContinuousCheck check = batch::AnalyzeContinuous(*variant, "main", 2);
  EXPECT_FALSE(check.ok());
  EXPECT_NE(check.reason.find("variant"), std::string::npos) << check.reason;
}

// ---- serialization ----------------------------------------------------------

TEST(Continuous, SaveLoadRoundTripPreservesStepSpecAndServes) {
  schedfuzz::ContinuousHarness harness(/*hidden_size=*/10, /*num_layers=*/2,
                                       /*weight_seed=*/21);
  std::stringstream buffer;
  harness.exec->Save(buffer);
  auto loaded = vm::Executable::Load(buffer);

  const vm::BatchedEntrySpec* spec = loaded->FindBatched("main");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->step_function, "main_step");
  EXPECT_EQ(spec->result_state, 2 * (2 - 1));

  // The loaded executable serves continuously, bit-identical to the
  // original run sequentially.
  serve::Server server{serve::ServeConfig{}};
  serve::ModelConfig mc;
  mc.exec = loaded;
  mc.batch.continuous = true;
  mc.batch.continuous_slots = 2;
  server.AddModel("lstm", std::move(mc));
  server.Start();

  support::Rng rng(1234);
  vm::VirtualMachine sequential(harness.exec);
  std::vector<NDArray> inputs;
  std::vector<NDArray> expected;
  std::vector<std::future<runtime::ObjectRef>> futures;
  for (int64_t len : {4, 1, 6}) {
    NDArray x = models::RandomSequence(len, harness.input_size, rng);
    inputs.push_back(x);
    expected.push_back(AsTensor(sequential.Invoke(
        "main", {MakeTensor(x), MakeTensor(NDArray::Scalar<int64_t>(len))})));
    futures.push_back(server.Submit(
        "lstm", {MakeTensor(x), MakeTensor(NDArray::Scalar<int64_t>(len))},
        len));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    std::string diff =
        schedfuzz::CompareBits(AsTensor(futures[i].get()), expected[i], i);
    EXPECT_EQ(diff, "");
  }
  server.Drain();
}

// ---- lifecycle & failure paths ---------------------------------------------

TEST(Continuous, DrainFulfillsEveryAdmittedRequest) {
  schedfuzz::ContinuousHarness harness;
  serve::Server server{serve::ServeConfig{}};
  serve::ModelConfig mc;
  mc.exec = harness.exec;
  mc.queue_capacity = 32;
  mc.batch.continuous = true;
  mc.batch.continuous_slots = 2;
  server.AddModel("lstm", std::move(mc));
  server.Start();

  support::Rng rng(55);
  vm::VirtualMachine sequential(harness.exec);
  std::vector<NDArray> expected;
  std::vector<std::future<runtime::ObjectRef>> futures;
  // Far more requests than slots, submitted back to back, then an
  // immediate drain: every one must still complete (no admitted request is
  // ever dropped), in bit-identical form.
  for (int i = 0; i < 12; ++i) {
    int64_t len = 1 + (i * 5) % 9;
    NDArray x = models::RandomSequence(len, harness.input_size, rng);
    expected.push_back(AsTensor(sequential.Invoke(
        "main", {MakeTensor(x), MakeTensor(NDArray::Scalar<int64_t>(len))})));
    futures.push_back(server.Submit(
        "lstm", {MakeTensor(x), MakeTensor(NDArray::Scalar<int64_t>(len))},
        len));
  }
  server.Drain();
  for (size_t i = 0; i < futures.size(); ++i) {
    std::string diff =
        schedfuzz::CompareBits(AsTensor(futures[i].get()), expected[i], i);
    EXPECT_EQ(diff, "");
  }
  EXPECT_EQ(server.stats("lstm").completed, 12);
  EXPECT_EQ(server.stats("lstm").failed, 0);
}

TEST(Continuous, MalformedArgumentsAreRejectedNotServed) {
  schedfuzz::ContinuousHarness harness;
  serve::Server server{serve::ServeConfig{}};
  serve::ModelConfig mc;
  mc.exec = harness.exec;
  mc.batch.continuous = true;
  mc.batch.continuous_slots = 2;
  server.AddModel("lstm", std::move(mc));
  server.Start();

  support::Rng rng(66);
  // Wrong feature width: an [len, 4] sequence against feature_width 8.
  NDArray bad = models::RandomSequence(3, 4, rng);
  auto bad_future = server.Submit(
      "lstm", {MakeTensor(bad), MakeTensor(NDArray::Scalar<int64_t>(3))}, 3);
  EXPECT_THROW(bad_future.get(), nimble::Error);

  // A well-formed request right behind it is unaffected.
  NDArray good = models::RandomSequence(3, harness.input_size, rng);
  vm::VirtualMachine sequential(harness.exec);
  NDArray want = AsTensor(sequential.Invoke(
      "main", {MakeTensor(good), MakeTensor(NDArray::Scalar<int64_t>(3))}));
  auto good_future = server.Submit(
      "lstm", {MakeTensor(good), MakeTensor(NDArray::Scalar<int64_t>(3))}, 3);
  EXPECT_EQ(schedfuzz::CompareBits(AsTensor(good_future.get()), want, 0), "");
  server.Drain();
  EXPECT_EQ(server.stats("lstm").failed, 1);
  EXPECT_EQ(server.stats("lstm").completed, 1);
  // The rejected request never touched a slot.
  EXPECT_EQ(server.stats("lstm").splices, 1);
}

// ---- exec-cache churn while a continuous model splices ----------------------

// A continuous model and a bucket-cached model share one server; the cache
// is capacity-starved so background compiles and LRU evictions churn while
// the step runner splices. In-flight variants evicted under churn must stay
// alive (shared_ptr), results stay bit-identical on both models. This is
// the TSan target for cross-subsystem interleavings.
TEST(Continuous, ExecCacheChurnWhileContinuousModelSplices) {
  models::LSTMConfig config;
  config.input_size = 8;
  config.hidden_size = 10;
  config.seed = 3;
  config.emit_batched = true;
  auto model = models::BuildLSTM(config);
  core::CompileOptions opts;
  opts.batched_entries = {model.batched_spec};
  auto exec = core::Compile(model.module, opts).executable;

  serve::ExecCacheConfig cache_config;
  cache_config.capacity = 2;  // tiny: every new length evicts
  cache_config.min_observations = 1;
  cache_config.specialize_batch = 2;
  auto cache = std::make_shared<serve::ExecCache>(
      [config](int64_t max_len, int64_t batch, const codegen::DenseConfig&) {
        auto variant_model = models::BuildLSTM(config);
        core::CompileOptions variant_opts;
        variant_opts.batched_entries = {variant_model.batched_spec};
        variant_opts.specialize_length = max_len;
        variant_opts.specialize_batch = batch;
        return core::Compile(variant_model.module, variant_opts).executable;
      },
      cache_config);

  serve::ServeConfig server_config;
  server_config.num_workers = 2;
  serve::Server server(server_config);
  {
    serve::ModelConfig continuous;
    continuous.exec = exec;
    continuous.queue_capacity = 128;
    continuous.batch.continuous = true;
    continuous.batch.continuous_slots = 4;
    server.AddModel("continuous", std::move(continuous));
  }
  {
    serve::ModelConfig bucketed;
    bucketed.exec = exec;
    bucketed.queue_capacity = 128;
    bucketed.batch.tensor_batching = true;
    bucketed.batch.max_batch_size = 2;
    bucketed.exec_cache = cache;
    server.AddModel("bucketed", std::move(bucketed));
  }
  server.Start();

  struct Submitted {
    std::future<runtime::ObjectRef> future;
    NDArray want;
  };
  auto submit_stream = [&](const std::string& model_name, uint64_t seed,
                           std::vector<Submitted>* out) {
    // Each stream gets its own reference VM: VirtualMachine is not
    // thread-safe and the streams run concurrently.
    vm::VirtualMachine sequential(exec);
    support::Rng rng(seed);
    for (int i = 0; i < 24; ++i) {
      int64_t len = rng.UniformInt(1, 9);
      NDArray x = models::RandomSequence(len, 8, rng);
      Submitted s;
      s.want = AsTensor(sequential.Invoke(
          "main", {MakeTensor(x), MakeTensor(NDArray::Scalar<int64_t>(len))}));
      s.future = server.Submit(
          model_name,
          {MakeTensor(x), MakeTensor(NDArray::Scalar<int64_t>(len))}, len);
      out->push_back(std::move(s));
    }
  };
  std::vector<Submitted> continuous_reqs;
  std::vector<Submitted> bucketed_reqs;
  // Submit to both models from separate threads while a third hammers the
  // cache's Lookup path with churning lengths.
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    support::Rng rng(9001);
    while (!stop.load(std::memory_order_acquire)) {
      (void)cache->Lookup(rng.UniformInt(1, 9), 2);
    }
  });
  std::thread submit_continuous(
      [&] { submit_stream("continuous", 101, &continuous_reqs); });
  std::thread submit_bucketed(
      [&] { submit_stream("bucketed", 202, &bucketed_reqs); });
  submit_continuous.join();
  submit_bucketed.join();
  for (auto& s : continuous_reqs) {
    EXPECT_EQ(schedfuzz::CompareBits(AsTensor(s.future.get()), s.want, 0), "");
  }
  for (auto& s : bucketed_reqs) {
    EXPECT_EQ(schedfuzz::CompareBits(AsTensor(s.future.get()), s.want, 0), "");
  }
  stop.store(true, std::memory_order_release);
  churn.join();
  server.Drain();
  EXPECT_EQ(server.stats("continuous").completed, 24);
  EXPECT_EQ(server.stats("bucketed").completed, 24);
}

}  // namespace
}  // namespace nimble
