// Network front-end tests: JSON codec, incremental HTTP parsing, and the
// loopback end-to-end contract — requests over a real socket produce
// results bit-identical to sequential VirtualMachine::Invoke, and
// backpressure is protocol-visible (429 on a full queue, 404 unknown
// model, 400 malformed body, graceful drain without dropped requests).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/compiler.h"
#include "src/models/lstm.h"
#include "src/models/workloads.h"
#include "src/net/http_client.h"
#include "src/net/http_codec.h"
#include "src/net/http_server.h"
#include "src/net/json.h"
#include "src/obs/step_journal.h"
#include "src/serve/server.h"
#include "src/vm/vm.h"

namespace nimble {
namespace {

using net::HttpCodec;
using net::HttpRequest;
using net::Json;
using runtime::AsTensor;
using runtime::MakeTensor;
using runtime::NDArray;

// ---- JSON -------------------------------------------------------------------

TEST(Json, ParsesScalarsArraysObjects) {
  std::string error;
  Json doc = Json::Parse(
      R"({"a": 1.5, "b": [1, 2, 3], "c": {"d": "x\ny"}, "e": true, "f": null})",
      &error);
  ASSERT_TRUE(doc.is_object()) << error;
  EXPECT_DOUBLE_EQ(doc.Find("a")->number(), 1.5);
  ASSERT_TRUE(doc.Find("b")->is_array());
  EXPECT_EQ(doc.Find("b")->items().size(), 3u);
  EXPECT_EQ(doc.Find("b")->items()[2].integer(), 3);
  EXPECT_EQ(doc.Find("c")->Find("d")->str(), "x\ny");
  EXPECT_TRUE(doc.Find("e")->boolean());
  EXPECT_TRUE(doc.Find("f")->is_null());
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad :
       {"{", "[1,", "{\"a\" 1}", "tru", "{\"a\":1} extra", "\"unterminated",
        "{'single': 1}"}) {
    std::string error;
    Json doc = Json::Parse(bad, &error);
    EXPECT_TRUE(doc.is_null()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(Json, RejectsExcessiveNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  std::string error;
  EXPECT_TRUE(Json::Parse(deep, &error).is_null());
  EXPECT_NE(error.find("deep"), std::string::npos);
}

TEST(Json, DumpParseRoundTripsFloat32Exactly) {
  // 9 significant digits round-trip any float32 through decimal text.
  support::Rng rng(11);
  Json array = Json::Array();
  std::vector<float> values;
  for (int i = 0; i < 256; ++i) {
    float v = static_cast<float>(rng.Uniform(-100.0, 100.0));
    if (i % 7 == 0) v *= 1e-6f;
    if (i % 11 == 0) v *= 1e6f;
    values.push_back(v);
    array.Append(static_cast<double>(v));
  }
  Json parsed = Json::Parse(array.Dump());
  ASSERT_TRUE(parsed.is_array());
  ASSERT_EQ(parsed.items().size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(static_cast<float>(parsed.items()[i].number()), values[i])
        << "index " << i;
  }
}

TEST(Json, DumpEscapesAndOrdersMembers) {
  Json doc = Json::Object();
  doc.Set("b", "quote\" backslash\\ newline\n");
  doc.Set("a", 3);
  EXPECT_EQ(doc.Dump(),
            "{\"b\":\"quote\\\" backslash\\\\ newline\\n\",\"a\":3}")
      << "insertion order preserved, specials escaped";
}

TEST(Json, RejectsSurrogateEscapesLoneAndPaired) {
  // json.h promises BMP-only \uXXXX with NO surrogate handling: encoding a
  // surrogate half as UTF-8 would emit ill-formed (CESU-8) bytes, so the
  // whole D800-DFFF range must be a parse error — including a well-formed
  // high/low pair, which this codec deliberately does not decode.
  for (const char* bad : {
           R"("\ud800")",        // lone high surrogate
           R"("\udc00")",        // lone low surrogate
           R"("\udfff")",        // top of the range
           "\"\\ud83d\\ude00\"",    // valid pair (astral emoji) — unsupported
           R"({"k": "a\ud800b"})",  // embedded mid-string
       }) {
    std::string error;
    Json doc = Json::Parse(bad, &error);
    EXPECT_TRUE(doc.is_null()) << bad;
    EXPECT_NE(error.find("surrogate"), std::string::npos) << bad << ": "
                                                          << error;
  }
  // Non-surrogate BMP escapes still decode to UTF-8.
  Json ok = Json::Parse("\"caf\\u00e9 \\u4e2d\"");
  ASSERT_TRUE(ok.is_string());
  EXPECT_EQ(ok.str(), "caf\xc3\xa9 \xe4\xb8\xad");
}

// ---- HTTP codec -------------------------------------------------------------

TEST(HttpCodec, ParsesRequestFedByteByByte) {
  std::string wire =
      "POST /v1/models/m:predict HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 7\r\n"
      "\r\n"
      "{\"x\":1}";
  HttpCodec codec;
  HttpRequest request;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    codec.Feed(&wire[i], 1);
    ASSERT_EQ(codec.Next(&request), HttpCodec::Status::kNeedMore)
        << "byte " << i;
  }
  codec.Feed(&wire[wire.size() - 1], 1);
  ASSERT_EQ(codec.Next(&request), HttpCodec::Status::kRequest);
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/v1/models/m:predict");
  EXPECT_EQ(request.body, "{\"x\":1}");
  ASSERT_NE(request.FindHeader("content-type"), nullptr) << "lowercased";
  EXPECT_EQ(*request.FindHeader("content-type"), "application/json");
  EXPECT_TRUE(request.keep_alive) << "HTTP/1.1 default";
}

TEST(HttpCodec, ParsesPipelinedRequestsFromOneFeed) {
  std::string wire =
      "GET /stats HTTP/1.1\r\n\r\n"
      "POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"
      "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
  HttpCodec codec;
  codec.Feed(wire.data(), wire.size());
  HttpRequest r1, r2, r3;
  ASSERT_EQ(codec.Next(&r1), HttpCodec::Status::kRequest);
  ASSERT_EQ(codec.Next(&r2), HttpCodec::Status::kRequest);
  ASSERT_EQ(codec.Next(&r3), HttpCodec::Status::kRequest);
  EXPECT_EQ(r1.target, "/stats");
  EXPECT_EQ(r2.body, "hi");
  EXPECT_EQ(r3.target, "/healthz");
  EXPECT_FALSE(r3.keep_alive) << "Connection: close honored";
  HttpRequest r4;
  EXPECT_EQ(codec.Next(&r4), HttpCodec::Status::kNeedMore);
}

TEST(HttpCodec, RejectsProtocolViolations) {
  struct Case {
    const char* wire;
    int status;
  };
  for (const Case& c : {
           Case{"garbage\r\n\r\n", 400},
           Case{"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400},
           Case{"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501},
       }) {
    HttpCodec codec;
    codec.Feed(c.wire, std::strlen(c.wire));
    HttpRequest request;
    ASSERT_EQ(codec.Next(&request), HttpCodec::Status::kError) << c.wire;
    EXPECT_EQ(codec.error_status(), c.status) << c.wire;
    // Poisoned: stays an error.
    EXPECT_EQ(codec.Next(&request), HttpCodec::Status::kError);
  }
}

TEST(HttpCodec, EnforcesHeaderAndBodyLimits) {
  HttpCodec::Limits limits;
  limits.max_header_bytes = 128;
  limits.max_body_bytes = 64;
  {
    HttpCodec codec(limits);
    std::string wire = "GET / HTTP/1.1\r\nX-Big: " + std::string(256, 'a');
    codec.Feed(wire.data(), wire.size());
    HttpRequest request;
    EXPECT_EQ(codec.Next(&request), HttpCodec::Status::kError);
    EXPECT_EQ(codec.error_status(), 400);
  }
  {
    HttpCodec codec(limits);
    std::string wire = "POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n";
    codec.Feed(wire.data(), wire.size());
    HttpRequest request;
    EXPECT_EQ(codec.Next(&request), HttpCodec::Status::kError);
    EXPECT_EQ(codec.error_status(), 413);
  }
}

TEST(HttpCodec, FlagsExpectContinueOnce) {
  HttpCodec codec;
  std::string head =
      "POST / HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 4\r\n\r\n";
  codec.Feed(head.data(), head.size());
  HttpRequest request;
  ASSERT_EQ(codec.Next(&request), HttpCodec::Status::kNeedMore);
  EXPECT_TRUE(codec.ClaimExpectContinue());
  EXPECT_FALSE(codec.ClaimExpectContinue()) << "claimed exactly once";
  codec.Feed("abcd", 4);
  ASSERT_EQ(codec.Next(&request), HttpCodec::Status::kRequest);
  EXPECT_EQ(request.body, "abcd");
}

TEST(HttpCodec, WritesResponsesWithFraming) {
  std::string response = HttpCodec::WriteResponse(
      429, "{\"error\":\"queue full\"}", "application/json",
      /*keep_alive=*/true, {{"Retry-After", "1"}});
  EXPECT_NE(response.find("HTTP/1.1 429 Too Many Requests\r\n"),
            std::string::npos);
  EXPECT_NE(response.find("Content-Length: 22\r\n"), std::string::npos);
  EXPECT_NE(response.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\n{\"error\":\"queue full\"}"),
            std::string::npos);
}

// Byte-split fuzz: the same wire bytes must produce the same outcome no
// matter how the kernel fragments them across reads. Each corpus entry has
// one expected terminal outcome (N parsed requests, an error status, or
// still-waiting); fixed seeds drive random split points so failures
// reproduce exactly.
TEST(HttpCodec, ByteSplitFuzzOutcomeInvariantAcrossFragmentation) {
  struct Case {
    std::string wire;
    int requests;      // complete requests the bytes contain
    int error_status;  // 0 = no error
    bool need_more;    // true when the bytes end mid-request
  };
  const std::string valid_post =
      "POST /v1/models/m:predict HTTP/1.1\r\nContent-Length: 7\r\n\r\n"
      "{\"x\":1}";
  std::vector<Case> corpus = {
      {valid_post, 1, 0, false},
      {valid_post + valid_post + "GET /stats HTTP/1.1\r\n\r\n", 3, 0, false},
      // Truncations at every interesting boundary: request line, header,
      // blank line, mid-body.
      {"POST /x HT", 0, 0, true},
      {"POST /x HTTP/1.1\r\nContent-Le", 0, 0, true},
      {"POST /x HTTP/1.1\r\nContent-Length: 7\r\n", 0, 0, true},
      {"POST /x HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"x\"", 0, 0, true},
      // Malformed: framing garbage, bad length, unimplemented transfer
      // coding — and a valid request pipelined BEHIND the poison pill must
      // never be parsed.
      {"garbage\r\n\r\n" + valid_post, 0, 400, false},
      {"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 0, 400, false},
      {"POST /x HTTP/1.1\r\nContent-Length: -4\r\n\r\n", 0, 400, false},
      {"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nx", 0, 501,
       false},
      {valid_post + "garbage\r\n\r\n", 1, 400, false},
  };
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    support::Rng rng(seed);
    for (const Case& c : corpus) {
      HttpCodec codec;
      int requests = 0;
      int error_status = 0;
      bool need_more = false;
      size_t pos = 0;
      while (pos < c.wire.size() && error_status == 0) {
        size_t chunk = static_cast<size_t>(rng.UniformInt(
            1, static_cast<int64_t>(
                   std::min<size_t>(7, c.wire.size() - pos))));
        codec.Feed(c.wire.data() + pos, chunk);
        pos += chunk;
        while (true) {
          HttpRequest request;
          HttpCodec::Status status = codec.Next(&request);
          if (status == HttpCodec::Status::kRequest) {
            ++requests;
            continue;
          }
          if (status == HttpCodec::Status::kError) {
            error_status = codec.error_status();
          } else {
            need_more = true;
          }
          break;
        }
      }
      EXPECT_EQ(requests, c.requests) << c.wire << " seed " << seed;
      EXPECT_EQ(error_status, c.error_status) << c.wire << " seed " << seed;
      if (c.need_more) {
        EXPECT_TRUE(need_more) << c.wire << " seed " << seed;
      }
    }
  }
  // Size limits are fragmentation-invariant too: an oversized declared
  // body must map to 413 whether the head arrives whole or byte by byte.
  HttpCodec::Limits limits;
  limits.max_body_bytes = 64;
  const std::string big =
      "POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n";
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    support::Rng rng(seed * 31);
    HttpCodec codec(limits);
    int error_status = 0;
    size_t pos = 0;
    while (pos < big.size() && error_status == 0) {
      size_t chunk = static_cast<size_t>(rng.UniformInt(
          1, static_cast<int64_t>(std::min<size_t>(5, big.size() - pos))));
      codec.Feed(big.data() + pos, chunk);
      pos += chunk;
      HttpRequest request;
      if (codec.Next(&request) == HttpCodec::Status::kError) {
        error_status = codec.error_status();
      }
    }
    EXPECT_EQ(error_status, 413) << "seed " << seed;
  }
}

// Mutation fuzz: random single-byte corruptions of a valid request head
// must never crash the codec (ASan job) and every error must map to one of
// the statuses the front end actually speaks: 400, 413, 501.
TEST(HttpCodec, MutationFuzzNeverCrashesAndMapsToKnownStatuses) {
  const std::string base =
      "POST /v1/models/m:predict HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Length: 7\r\n"
      "\r\n"
      "{\"x\":1}";
  const size_t head_len = base.find("\r\n\r\n") + 4;
  int errors = 0;
  for (uint64_t seed = 1; seed <= 300; ++seed) {
    support::Rng rng(seed * 7919);
    std::string wire = base;
    int flips = static_cast<int>(rng.UniformInt(1, 3));
    for (int f = 0; f < flips; ++f) {
      size_t at = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(head_len) - 1));
      wire[at] = static_cast<char>(rng.UniformInt(0, 255));
    }
    HttpCodec codec;
    codec.Feed(wire.data(), wire.size());
    while (true) {
      HttpRequest request;
      HttpCodec::Status status = codec.Next(&request);
      if (status == HttpCodec::Status::kRequest) continue;
      if (status == HttpCodec::Status::kError) {
        ++errors;
        int s = codec.error_status();
        EXPECT_TRUE(s == 400 || s == 413 || s == 501)
            << "unmapped status " << s << " for seed " << seed;
      }
      break;  // kNeedMore (mutated Content-Length may want more bytes)
    }
  }
  EXPECT_GT(errors, 0) << "corpus never hit the error path — fuzz is inert";
}

// ---- loopback end-to-end ----------------------------------------------------

/// Compiled LSTM + expected sequential results + JSON/binary body builders.
struct HttpFixture {
  models::LSTMModel model;
  std::shared_ptr<vm::Executable> exec;
  std::vector<int64_t> lengths;
  std::vector<NDArray> inputs;
  std::vector<NDArray> expected;

  explicit HttpFixture(std::vector<int64_t> request_lengths,
                       uint64_t seed = 21) {
    models::LSTMConfig config;
    config.input_size = 8;
    config.hidden_size = 16;
    config.emit_batched = true;
    model = models::BuildLSTM(config);
    ir::Module mod = model.module;
    core::CompileOptions opts;
    opts.batched_entries = {model.batched_spec};
    exec = core::Compile(mod, opts).executable;

    support::Rng rng(seed);
    lengths = std::move(request_lengths);
    vm::VirtualMachine sequential(exec);
    for (int64_t len : lengths) {
      NDArray x = models::RandomSequence(len, config.input_size, rng);
      inputs.push_back(x);
      auto out = sequential.Invoke(
          "main", {MakeTensor(x), MakeTensor(NDArray::Scalar<int64_t>(len))});
      expected.push_back(AsTensor(out));
    }
  }

  std::string JsonBody(size_t i) const {
    Json tensor = Json::Object();
    Json shape = Json::Array();
    for (int64_t dim : inputs[i].shape()) shape.Append(dim);
    tensor.Set("shape", std::move(shape));
    Json data = Json::Array();
    const float* src = inputs[i].data<float>();
    for (int64_t j = 0; j < inputs[i].num_elements(); ++j) {
      data.Append(static_cast<double>(src[j]));
    }
    tensor.Set("data", std::move(data));
    Json scalar = Json::Object();
    scalar.Set("scalar", lengths[i]);
    Json inputs_json = Json::Array();
    inputs_json.Append(std::move(tensor));
    inputs_json.Append(std::move(scalar));
    Json body = Json::Object();
    body.Set("inputs", std::move(inputs_json));
    body.Set("length", lengths[i]);
    return body.Dump();
  }

  /// Asserts a 200 predict response matches the sequential result exactly.
  void ExpectResponseBitIdentical(
      const net::BlockingHttpClient::Response& response, size_t i) const {
    ASSERT_TRUE(response.ok) << response.error;
    ASSERT_EQ(response.status, 200) << response.body;
    Json doc = Json::Parse(response.body);
    ASSERT_TRUE(doc.is_object());
    const Json* data = doc.Find("data");
    ASSERT_NE(data, nullptr);
    ASSERT_EQ(static_cast<int64_t>(data->items().size()),
              expected[i].num_elements());
    const float* want = expected[i].data<float>();
    for (size_t j = 0; j < data->items().size(); ++j) {
      ASSERT_EQ(static_cast<float>(data->items()[j].number()), want[j])
          << "request " << i << " flat index " << j;
    }
  }
};

struct RunningServer {
  serve::Server server;
  net::HttpServer http;

  RunningServer(const HttpFixture& fixture, serve::ModelConfig model_config,
                serve::ServeConfig serve_config = MakeServeConfig())
      : server(serve_config), http(&server, MakeHttpConfig()) {
    model_config.exec = fixture.exec;
    server.AddModel("lstm", std::move(model_config));
    server.Start();
    http.Start();
  }

  static serve::ServeConfig MakeServeConfig() {
    serve::ServeConfig config;
    config.num_workers = 2;
    return config;
  }

  static net::HttpServerConfig MakeHttpConfig() {
    net::HttpServerConfig config;
    config.port = 0;  // ephemeral
    return config;
  }
};

TEST(HttpServe, PredictOverLoopbackBitIdenticalToSequential) {
  HttpFixture fixture({5, 12, 3, 9, 7, 5, 20, 11});
  serve::ModelConfig model;
  model.batch.max_batch_size = 4;
  model.batch.max_wait_micros = 500;
  model.batch.tensor_batching = true;
  RunningServer rig(fixture, std::move(model));

  net::BlockingHttpClient client("127.0.0.1", rig.http.port());
  for (size_t i = 0; i < fixture.lengths.size(); ++i) {
    auto response =
        client.Post("/v1/models/lstm:predict", fixture.JsonBody(i));
    fixture.ExpectResponseBitIdentical(response, i);
  }
  rig.http.Stop();
  rig.server.Drain();
  EXPECT_EQ(rig.server.stats().completed,
            static_cast<int64_t>(fixture.lengths.size()));
  EXPECT_EQ(rig.server.stats().failed, 0);
}

TEST(HttpServe, ConcurrentKeepAliveClientsAllBitIdentical) {
  const int kClients = 4;
  std::vector<int64_t> lengths;
  for (int i = 0; i < 32; ++i) lengths.push_back(3 + (i * 5) % 17);
  HttpFixture fixture(lengths);
  serve::ModelConfig model;
  model.batch.max_batch_size = 4;
  model.batch.max_wait_micros = 1000;
  model.batch.tensor_batching = true;
  RunningServer rig(fixture, std::move(model));

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      net::BlockingHttpClient client("127.0.0.1", rig.http.port());
      for (size_t i = static_cast<size_t>(c); i < fixture.lengths.size();
           i += kClients) {
        auto response =
            client.Post("/v1/models/lstm:predict", fixture.JsonBody(i));
        if (!response.ok || response.status != 200) {
          failures.fetch_add(1);
          continue;
        }
        Json doc = Json::Parse(response.body);
        const Json* data = doc.Find("data");
        const float* want = fixture.expected[i].data<float>();
        for (size_t j = 0; j < data->items().size(); ++j) {
          if (static_cast<float>(data->items()[j].number()) != want[j]) {
            failures.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  rig.http.Stop();
  rig.server.Drain();
  EXPECT_EQ(rig.server.stats().completed,
            static_cast<int64_t>(fixture.lengths.size()));
}

TEST(HttpServe, BinaryBodyRoundTripsBitIdentical) {
  HttpFixture fixture({6, 4});
  serve::ModelConfig model;
  model.batch.max_batch_size = 2;
  RunningServer rig(fixture, std::move(model));

  net::BlockingHttpClient client("127.0.0.1", rig.http.port());
  for (size_t i = 0; i < fixture.lengths.size(); ++i) {
    std::string shape = std::to_string(fixture.inputs[i].shape()[0]) + "," +
                        std::to_string(fixture.inputs[i].shape()[1]);
    std::string body(static_cast<const char*>(fixture.inputs[i].raw_data()),
                     fixture.inputs[i].nbytes());
    auto response = client.Request(
        "POST", "/v1/models/lstm:predict", body,
        {{"Content-Type", "application/octet-stream"},
         {"Accept", "application/octet-stream"},
         {"X-Nimble-Shape", shape},
         {"X-Nimble-Length", std::to_string(fixture.lengths[i])}});
    ASSERT_TRUE(response.ok) << response.error;
    ASSERT_EQ(response.status, 200);
    ASSERT_EQ(response.body.size(), fixture.expected[i].nbytes());
    EXPECT_EQ(std::memcmp(response.body.data(),
                          fixture.expected[i].raw_data(),
                          response.body.size()),
              0)
        << "binary response must be the exact float32 bytes";
    const std::string* shape_header = response.FindHeader("x-nimble-shape");
    ASSERT_NE(shape_header, nullptr);
    EXPECT_EQ(*shape_header, "1," + std::to_string(
                                        fixture.expected[i].shape()[1]));
  }
}

TEST(HttpServe, ErrorStatusCodes) {
  HttpFixture fixture({4});
  serve::ModelConfig model;
  RunningServer rig(fixture, std::move(model));

  net::BlockingHttpClient client("127.0.0.1", rig.http.port());
  EXPECT_EQ(client.Post("/v1/models/nope:predict", "{}").status, 404)
      << "unknown model";
  EXPECT_EQ(client.Post("/v1/models/lstm:predict", "not json").status, 400)
      << "malformed body";
  EXPECT_EQ(client.Post("/v1/models/lstm:predict",
                        "{\"inputs\": [{\"shape\": [2, 8], \"data\": [1]}]}")
                .status,
            400)
      << "shape/data mismatch";
  // Overflow bomb: 2^32 * 2^32 wraps a naive int64 product to 0, which
  // would "match" an empty data array and build a tensor whose shape lies
  // about its allocation. Must be a clean 400, for both protocols.
  EXPECT_EQ(client.Post("/v1/models/lstm:predict",
                        "{\"inputs\": [{\"shape\": [4294967296, 4294967296], "
                        "\"data\": []}]}")
                .status,
            400)
      << "shape-product overflow (JSON)";
  EXPECT_EQ(client
                .Request("POST", "/v1/models/lstm:predict", "",
                         {{"Content-Type", "application/octet-stream"},
                          {"X-Nimble-Shape", "4294967296,4294967296"}})
                .status,
            400)
      << "shape-product overflow (binary)";
  EXPECT_EQ(client.Get("/v1/models/lstm:predict").status, 405)
      << "GET predict";
  EXPECT_EQ(client.Get("/nowhere").status, 404) << "unrouted target";
  EXPECT_EQ(client.Get("/healthz").status, 200);

  auto models = client.Get("/v1/models");
  ASSERT_EQ(models.status, 200);
  Json doc = Json::Parse(models.body);
  ASSERT_TRUE(doc.Find("models")->is_array());
  EXPECT_EQ(doc.Find("models")->items()[0].str(), "lstm");
}

TEST(HttpServe, OverloadShedsWith429NeverHangsNever5xx) {
  // Deliberately tiny pipeline: 1 worker, 1 pending batch, queue of 2,
  // batch size 1. A burst from 6 threads must split into 200s and 429s —
  // no 5xx, no hangs, and every 200 still bit-identical.
  std::vector<int64_t> lengths;
  for (int i = 0; i < 36; ++i) lengths.push_back(16);
  HttpFixture fixture(lengths);
  serve::ModelConfig model;
  model.queue_capacity = 2;
  model.batch.max_batch_size = 1;
  model.batch.max_wait_micros = 0;
  serve::ServeConfig serve_config;
  serve_config.num_workers = 1;
  serve_config.max_pending_batches = 1;
  RunningServer rig(fixture, std::move(model), serve_config);

  const int kThreads = 6;
  std::atomic<int> ok200{0}, shed429{0}, server_error{0}, transport_error{0};
  std::atomic<int> mismatched{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kThreads; ++c) {
    clients.emplace_back([&, c] {
      net::BlockingHttpClient client("127.0.0.1", rig.http.port());
      for (size_t i = static_cast<size_t>(c); i < fixture.lengths.size();
           i += kThreads) {
        auto response =
            client.Post("/v1/models/lstm:predict", fixture.JsonBody(i));
        if (!response.ok) {
          transport_error.fetch_add(1);
          continue;
        }
        if (response.status == 200) {
          ok200.fetch_add(1);
          Json doc = Json::Parse(response.body);
          const Json* data = doc.Find("data");
          const float* want = fixture.expected[i].data<float>();
          for (size_t j = 0; j < data->items().size(); ++j) {
            if (static_cast<float>(data->items()[j].number()) != want[j]) {
              mismatched.fetch_add(1);
              break;
            }
          }
        } else if (response.status == 429) {
          shed429.fetch_add(1);
          EXPECT_NE(response.FindHeader("retry-after"), nullptr);
        } else if (response.status >= 500) {
          server_error.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(server_error.load(), 0) << "overload must shed, not error";
  EXPECT_EQ(transport_error.load(), 0) << "overload must shed, not hang/drop";
  EXPECT_EQ(mismatched.load(), 0);
  EXPECT_GT(shed429.load(), 0) << "a 2-deep queue under 6 threads must shed";
  EXPECT_GT(ok200.load(), 0);
  EXPECT_EQ(ok200.load() + shed429.load(),
            static_cast<int>(fixture.lengths.size()));

  rig.http.Stop();
  rig.server.Drain();
  auto snap = rig.server.stats();
  EXPECT_EQ(snap.completed, ok200.load());
  EXPECT_EQ(snap.rejected, shed429.load()) << "shed accounting matches wire";
}

TEST(HttpServe, StatsEndpointReportsPipelineAndHttpCounters) {
  HttpFixture fixture({5, 9, 7, 3});
  serve::ModelConfig model;
  model.batch.max_batch_size = 2;
  model.batch.max_wait_micros = 500;
  model.batch.adaptive = true;
  RunningServer rig(fixture, std::move(model));

  net::BlockingHttpClient client("127.0.0.1", rig.http.port());
  for (size_t i = 0; i < fixture.lengths.size(); ++i) {
    ASSERT_EQ(client.Post("/v1/models/lstm:predict", fixture.JsonBody(i))
                  .status,
              200);
  }
  ASSERT_EQ(client.Post("/v1/models/nope:predict", "{}").status, 404);

  auto stats = client.Get("/stats");
  ASSERT_EQ(stats.status, 200);
  Json doc = Json::Parse(stats.body);
  ASSERT_TRUE(doc.is_object()) << stats.body;

  const Json* lstm = doc.Find("models")->Find("lstm");
  ASSERT_NE(lstm, nullptr);
  EXPECT_EQ(lstm->Find("completed")->integer(), 4);
  EXPECT_GT(lstm->Find("throughput_rps")->number(), 0.0);
  EXPECT_GT(lstm->Find("p99_latency_us")->number(), 0.0);
  EXPECT_GE(lstm->Find("mean_queue_wait_us")->number(), 0.0);
  EXPECT_GT(lstm->Find("mean_exec_us")->number(), 0.0);
  EXPECT_GT(lstm->Find("adaptive_wait_micros")->integer(), 0)
      << "adaptive controller gauge surfaces over HTTP";
  EXPECT_NE(lstm->Find("queue_depth"), nullptr);
  EXPECT_EQ(lstm->Find("queue_capacity")->integer(), 256);
  ASSERT_TRUE(lstm->Find("batch_size_hist")->is_object());

  const Json* http = doc.Find("http");
  ASSERT_NE(http, nullptr);
  EXPECT_GE(http->Find("by_endpoint")->Find("predict")->integer(), 5);
  EXPECT_GE(http->Find("by_status")->Find("200")->integer(), 4);
  EXPECT_GE(http->Find("by_status")->Find("404")->integer(), 1);

  // The latency split accounted over HTTP must add up.
  auto snap = rig.server.stats("lstm");
  EXPECT_NEAR(snap.mean_queue_wait_us + snap.mean_exec_us,
              snap.mean_latency_us, snap.mean_latency_us * 0.01 + 1.0);
}

TEST(HttpServe, MetricsEndpointExposesCountersMatchingTraffic) {
  HttpFixture fixture({5, 9, 7, 3});
  serve::ModelConfig model;
  model.batch.max_batch_size = 2;
  model.batch.max_wait_micros = 500;
  model.batch.tensor_batching = true;
  RunningServer rig(fixture, std::move(model));

  net::BlockingHttpClient client("127.0.0.1", rig.http.port());
  for (size_t i = 0; i < fixture.lengths.size(); ++i) {
    ASSERT_EQ(client.Post("/v1/models/lstm:predict", fixture.JsonBody(i))
                  .status,
              200);
  }
  ASSERT_EQ(client.Post("/v1/models/nope:predict", "{}").status, 404);

  auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok) << metrics.error;
  ASSERT_EQ(metrics.status, 200);
  const std::string* content_type = metrics.FindHeader("content-type");
  ASSERT_NE(content_type, nullptr);
  EXPECT_NE(content_type->find("text/plain"), std::string::npos);
  EXPECT_NE(content_type->find("version=0.0.4"), std::string::npos);

  const std::string& text = metrics.body;
  // Pipeline counters match the traffic exactly.
  EXPECT_NE(text.find("nimble_requests_total{model=\"lstm\","
                      "outcome=\"completed\"} 4"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("nimble_arrivals_total{model=\"lstm\"} 4"),
            std::string::npos)
      << text;
  // HTTP plane counters: 5 predicts routed (4 ok + 1 unknown model).
  EXPECT_NE(text.find("nimble_http_requests_total{endpoint=\"predict\"} 5"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("nimble_http_responses_total{code=\"404\"} 1"),
            std::string::npos)
      << text;
  // Histogram families render with their unit suffix and TYPE headers.
  EXPECT_NE(text.find("# TYPE nimble_e2e_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE nimble_batch_size histogram"),
            std::string::npos);
  EXPECT_NE(text.find("nimble_queue_depth{model=\"lstm\"}"),
            std::string::npos)
      << "queue-depth gauge sampled at scrape time";
  EXPECT_NE(text.find("nimble_e2e_latency_us_count{model=\"lstm\"} 4"),
            std::string::npos)
      << text;
  // The scrape records itself before rendering, so its own body counts it.
  EXPECT_NE(text.find("nimble_http_requests_total{endpoint=\"metrics\"} 1"),
            std::string::npos)
      << text;
  auto again = client.Get("/metrics");
  ASSERT_EQ(again.status, 200);
  EXPECT_NE(
      again.body.find("nimble_http_requests_total{endpoint=\"metrics\"} 2"),
      std::string::npos)
      << again.body;
}

TEST(HttpServe, TraceHeaderEchoAndDebugTraceExport) {
  HttpFixture fixture({6, 11, 4});
  serve::ModelConfig model;
  model.batch.max_batch_size = 2;
  model.batch.max_wait_micros = 500;
  model.batch.tensor_batching = true;
  RunningServer rig(fixture, std::move(model));

  net::BlockingHttpClient client("127.0.0.1", rig.http.port());
  // X-Nimble-Trace: 1 gets the request's own stage timings echoed back.
  auto traced = client.Request("POST", "/v1/models/lstm:predict",
                               fixture.JsonBody(0),
                               {{"Content-Type", "application/json"},
                                {"X-Nimble-Trace", "1"}});
  fixture.ExpectResponseBitIdentical(traced, 0);
  const std::string* echo = traced.FindHeader("x-nimble-trace");
  ASSERT_NE(echo, nullptr) << "traced request must echo its spans";
  EXPECT_NE(echo->find("queue_us="), std::string::npos) << *echo;
  EXPECT_NE(echo->find("exec_us="), std::string::npos) << *echo;
  EXPECT_NE(echo->find("kernel_us="), std::string::npos) << *echo;

  // Without the header (or with "0"): no echo.
  auto untraced = client.Post("/v1/models/lstm:predict", fixture.JsonBody(1));
  fixture.ExpectResponseBitIdentical(untraced, 1);
  EXPECT_EQ(untraced.FindHeader("x-nimble-trace"), nullptr);
  auto opted_out = client.Request("POST", "/v1/models/lstm:predict",
                                  fixture.JsonBody(2),
                                  {{"Content-Type", "application/json"},
                                   {"X-Nimble-Trace", "0"}});
  fixture.ExpectResponseBitIdentical(opted_out, 2);
  EXPECT_EQ(opted_out.FindHeader("x-nimble-trace"), nullptr);

  // Every request committed a trace regardless of echo. The commit runs on
  // the pool worker AFTER the response bytes are handed off, so the client
  // can observe its response before the trace lands — wait for all three.
  for (int i = 0; i < 2000 && rig.server.tracer()->committed() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The export is valid chrome-trace JSON with six spans per request.
  auto trace = client.Get("/debug/trace?n=2");
  ASSERT_EQ(trace.status, 200);
  Json doc = Json::Parse(trace.body);
  ASSERT_TRUE(doc.is_object()) << trace.body;
  const Json* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_EQ(events->items().size(), 12u) << "?n=2 caps at 2 traces x 6 spans";
  std::set<std::string> names;
  for (const Json& event : events->items()) {
    names.insert(event.Find("name")->str());
    EXPECT_EQ(event.Find("ph")->str(), "X");
  }
  EXPECT_EQ(names.size(), 6u) << "admission/queue/pack/exec/unpack/write";
  EXPECT_EQ(rig.server.tracer()->committed(), 3);

  // Unbounded n: all three traces.
  auto all = client.Get("/debug/trace");
  Json all_doc = Json::Parse(all.body);
  EXPECT_EQ(all_doc.Find("traceEvents")->items().size(), 18u);
}

TEST(HttpServe, DebugStepsEndpointAndSlotTimelinesOverTheWire) {
  HttpFixture fixture({6, 3, 9, 4});
  serve::ModelConfig model;
  model.batch.continuous = true;
  model.batch.continuous_slots = 2;
  RunningServer rig(fixture, std::move(model));

  net::BlockingHttpClient client("127.0.0.1", rig.http.port());
  // First request traced: the echo must carry the continuous detail.
  auto traced = client.Request("POST", "/v1/models/lstm:predict",
                               fixture.JsonBody(0),
                               {{"Content-Type", "application/json"},
                                {"X-Nimble-Trace", "1"}});
  fixture.ExpectResponseBitIdentical(traced, 0);
  const std::string* echo = traced.FindHeader("x-nimble-trace");
  ASSERT_NE(echo, nullptr);
  EXPECT_NE(echo->find("slot="), std::string::npos) << *echo;
  EXPECT_NE(echo->find("splice_step="), std::string::npos) << *echo;
  EXPECT_NE(echo->find("steps_resident=6"), std::string::npos) << *echo;
  for (size_t i = 1; i < fixture.lengths.size(); ++i) {
    auto response =
        client.Post("/v1/models/lstm:predict", fixture.JsonBody(i));
    fixture.ExpectResponseBitIdentical(response, i);
  }
  // The final retire's step record is pushed at the END of that RunStep,
  // after the completion callback has already handed the response bytes
  // off — so the last response can race the last journal push. Settle.
  auto view = [&] {
    auto views = rig.server.continuous_models();
    return views.empty() ? nullptr : views[0].journal;
  }();
  ASSERT_NE(view, nullptr);
  for (int i = 0; i < 2000; ++i) {
    std::vector<obs::StepRecord> tail =
        view->Tail(view->config().ring_capacity);
    size_t seen = 0;
    for (const obs::StepRecord& r : tail) {
      for (const obs::StepEvent& e : r.events) {
        if (e.kind == obs::StepEvent::Kind::kRetire) seen++;
      }
    }
    if (seen == fixture.lengths.size()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // /debug/steps?model=: the journal tail with one splice and one retire
  // per request.
  auto steps = client.Get("/debug/steps?model=lstm");
  ASSERT_EQ(steps.status, 200) << steps.body;
  Json journal = Json::Parse(steps.body);
  ASSERT_TRUE(journal.is_object()) << steps.body;
  EXPECT_EQ(journal.Find("model")->str(), "lstm");
  EXPECT_EQ(journal.Find("num_slots")->integer(), 2);
  const Json* records = journal.Find("steps");
  ASSERT_NE(records, nullptr);
  EXPECT_GT(records->items().size(), 0u);
  size_t splices = 0, retires = 0;
  int64_t last_step = -1;
  for (const Json& record : records->items()) {
    EXPECT_GT(record.Find("step")->integer(), last_step);
    last_step = record.Find("step")->integer();
    EXPECT_GE(record.Find("duration_us")->integer(), 0);
    EXPECT_EQ(record.Find("num_slots")->integer(), 2);
    for (const Json& event : record.Find("events")->items()) {
      const std::string& kind = event.Find("kind")->str();
      if (kind == "splice") splices++;
      if (kind == "retire") retires++;
    }
  }
  EXPECT_EQ(splices, fixture.lengths.size());
  EXPECT_EQ(retires, fixture.lengths.size());

  // ?n= caps the tail; omitted model lists every continuous journal;
  // an unknown model is a 404.
  auto one = client.Get("/debug/steps?model=lstm&n=1");
  ASSERT_EQ(one.status, 200);
  EXPECT_EQ(Json::Parse(one.body).Find("steps")->items().size(), 1u);
  auto all_models = client.Get("/debug/steps");
  ASSERT_EQ(all_models.status, 200);
  Json listing = Json::Parse(all_models.body);
  ASSERT_NE(listing.Find("models"), nullptr);
  EXPECT_EQ(listing.Find("models")->items().size(), 1u);
  EXPECT_EQ(client.Get("/debug/steps?model=nope").status, 404);

  // /debug/trace now interleaves slot-timeline tracks with request tracks.
  auto trace = client.Get("/debug/trace");
  ASSERT_EQ(trace.status, 200);
  Json doc = Json::Parse(trace.body);
  ASSERT_TRUE(doc.is_object()) << trace.body;
  bool saw_slot_process = false, saw_occupancy = false, saw_tenancy = false;
  for (const Json& event : doc.Find("traceEvents")->items()) {
    const std::string& name = event.Find("name")->str();
    const std::string& ph = event.Find("ph")->str();
    if (ph == "M" && name == "process_name" &&
        event.Find("args")->Find("name")->str() == "slots:lstm") {
      saw_slot_process = true;
    }
    if (ph == "C" && name == "occupancy") saw_occupancy = true;
    if (ph == "X" && name.rfind("req ", 0) == 0) saw_tenancy = true;
  }
  EXPECT_TRUE(saw_slot_process);
  EXPECT_TRUE(saw_occupancy);
  EXPECT_TRUE(saw_tenancy);

  // /stats surfaces the continuous occupancy block for this model.
  auto stats = client.Get("/stats");
  ASSERT_EQ(stats.status, 200);
  Json stats_doc = Json::Parse(stats.body);
  const Json* lstm = stats_doc.Find("models")->Find("lstm");
  ASSERT_NE(lstm, nullptr);
  const Json* continuous = lstm->Find("continuous");
  ASSERT_NE(continuous, nullptr) << stats.body;
  EXPECT_EQ(continuous->Find("slots")->integer(), 2);
  EXPECT_EQ(continuous->Find("splices")->integer(),
            static_cast<int64_t>(fixture.lengths.size()));
  EXPECT_GT(continuous->Find("steps")->integer(), 0);
  EXPECT_GT(continuous->Find("mean_step_duration_us")->number(), 0.0);

  // /metrics exports the renamed and the new step families.
  auto metrics = client.Get("/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("nimble_steps_total"), std::string::npos);
  EXPECT_NE(metrics.body.find("nimble_step_duration_us"), std::string::npos);
  EXPECT_NE(metrics.body.find("nimble_active_rows"), std::string::npos);
  EXPECT_NE(metrics.body.find("nimble_runner_stalled"), std::string::npos);

  rig.http.Stop();
  rig.server.Drain();
}

TEST(HttpServe, GracefulStopFlushesInFlightAndHealthzGoes503) {
  HttpFixture fixture({30, 30, 30, 30, 30, 30});
  serve::ModelConfig model;
  model.batch.max_batch_size = 2;
  model.batch.max_wait_micros = 200;
  RunningServer rig(fixture, std::move(model));

  // Saturate, then stop while responses are in flight.
  std::atomic<int> completed{0}, errors{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < fixture.lengths.size(); ++c) {
    clients.emplace_back([&, c] {
      net::BlockingHttpClient client("127.0.0.1", rig.http.port());
      auto response =
          client.Post("/v1/models/lstm:predict", fixture.JsonBody(c));
      if (response.ok && response.status == 200) {
        completed.fetch_add(1);
      } else {
        errors.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(completed.load(), static_cast<int>(fixture.lengths.size()));
  EXPECT_EQ(errors.load(), 0);

  // Drain the pipeline while the front end still answers: health flips to
  // 503 and new predictions are refused as 503 (draining), not 429.
  rig.server.Drain();
  EXPECT_TRUE(rig.server.draining());
  net::BlockingHttpClient probe("127.0.0.1", rig.http.port());
  EXPECT_EQ(probe.Get("/healthz").status, 503);
  EXPECT_EQ(probe.Post("/v1/models/lstm:predict", fixture.JsonBody(0)).status,
            503);

  rig.http.Stop();
  EXPECT_EQ(rig.http.open_connections(), 0u);

  // The pipeline accounted every admitted request exactly once.
  auto snap = rig.server.stats();
  EXPECT_EQ(snap.completed, static_cast<int64_t>(fixture.lengths.size()));
  EXPECT_EQ(snap.failed, 0);
}

}  // namespace
}  // namespace nimble
