// Kernel-substrate tests: every kernel against straightforward references,
// with parameterized shape sweeps (property-style).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/codegen/dispatch.h"
#include "src/codegen/parallel.h"
#include "src/codegen/tuner.h"
#include "src/kernels/registry.h"
#include "src/support/rng.h"

namespace nimble {
namespace {

using runtime::DataType;
using runtime::NDArray;
using runtime::ShapeVec;

NDArray Rand(ShapeVec shape, uint64_t seed) {
  support::Rng rng(seed);
  NDArray a = NDArray::Empty(std::move(shape), DataType::Float32());
  a.FillUniform(rng);
  return a;
}

// ---- dense: every residue class against the reference kernel ---------------

class DenseShapeTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DenseShapeTest, MatchesReference) {
  auto [m, n, k] = GetParam();
  NDArray x = Rand({m, k}, 1), w = Rand({n, k}, 2);
  NDArray out = NDArray::Empty({m, n}, DataType::Float32());
  NDArray ref = NDArray::Empty({m, n}, DataType::Float32());
  kernels::RunKernel("nn.dense", {x, w}, {out});
  kernels::RunKernel("nn.dense_ref", {x, w}, {ref});
  for (int64_t i = 0; i < out.num_elements(); ++i) {
    ASSERT_NEAR(out.data<float>()[i], ref.data<float>()[i], 1e-3f)
        << "m=" << m << " n=" << n << " k=" << k << " at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllResidues, DenseShapeTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31),
                       ::testing::Values(4, 13), ::testing::Values(8, 21)));

class DenseDispatchVariantTest : public ::testing::TestWithParam<int> {};

TEST_P(DenseDispatchVariantTest, EveryVariantCountIsCorrect) {
  int variants = GetParam();
  codegen::DenseDispatchTable table(variants);
  for (int m = 1; m <= 24; ++m) {
    NDArray x = Rand({m, 12}, 3), w = Rand({10, 12}, 4);
    NDArray out = NDArray::Empty({m, 10}, DataType::Float32());
    NDArray ref = NDArray::Empty({m, 10}, DataType::Float32());
    table.Run(x, w, out);
    kernels::RunKernel("nn.dense_ref", {x, w}, {ref});
    for (int64_t i = 0; i < out.num_elements(); ++i) {
      ASSERT_NEAR(out.data<float>()[i], ref.data<float>()[i], 1e-4f)
          << "variants=" << variants << " m=" << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, DenseDispatchVariantTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(DenseDispatch, StatsTrackSpecializedVsFallback) {
  codegen::DenseDispatchTable table(2);  // residues {0, 4} specialized
  NDArray w = Rand({4, 4}, 5);
  for (int m : {8, 12, 3, 4}) {
    NDArray x = Rand({m, 4}, 6);
    NDArray out = NDArray::Empty({m, 4}, DataType::Float32());
    table.Run(x, w, out);
  }
  EXPECT_EQ(table.stats().specialized_calls, 3);  // 8, 12 -> r0; 4 -> r4
  EXPECT_EQ(table.stats().fallback_calls, 1);     // 3 -> generic
  EXPECT_EQ(table.stats().per_residue[3], 1);
}

TEST(DenseDispatch, RejectsBadVariantCounts) {
  EXPECT_THROW(codegen::DenseDispatchTable(3), Error);
  EXPECT_THROW(codegen::DenseDispatchTable(0), Error);
}

TEST(DenseBlocked, TunerKernelMatchesReference) {
  for (const auto& config : codegen::DenseConfigSpace()) {
    NDArray x = Rand({5, 37}, 7), w = Rand({9, 37}, 8);
    NDArray out = NDArray::Empty({5, 9}, DataType::Float32());
    NDArray ref = NDArray::Empty({5, 9}, DataType::Float32());
    codegen::DenseBlocked(x.data<float>(), w.data<float>(), out.data<float>(),
                          5, 9, 37, config);
    kernels::RunKernel("nn.dense_ref", {x, w}, {ref});
    for (int64_t i = 0; i < 45; ++i) {
      ASSERT_NEAR(out.data<float>()[i], ref.data<float>()[i], 1e-3f)
          << config.ToString();
    }
  }
}

// ---- tiled + parallel dense: bit-identity, routing, tuning -----------------

// The canonical result every dense path must reproduce bit-for-bit: the
// per-row accumulation order of MicroRow1F32.
std::vector<float> RowReference(const NDArray& x, const NDArray& w, int64_t m,
                                int64_t n, int64_t k) {
  std::vector<float> ref(static_cast<size_t>(m * n));
  for (int64_t r = 0; r < m; ++r) {
    codegen::MicroRow1F32(x.data<float>() + r * k, w.data<float>(),
                          ref.data() + r * n, n, k);
  }
  return ref;
}

::testing::AssertionResult BitsEqual(const float* got, const float* want,
                                     int64_t count) {
  for (int64_t i = 0; i < count; ++i) {
    uint32_t g, e;
    std::memcpy(&g, got + i, 4);
    std::memcpy(&e, want + i, 4);
    if (g != e) {
      return ::testing::AssertionFailure()
             << "bit mismatch at " << i << ": got " << got[i] << " want "
             << want[i];
    }
  }
  return ::testing::AssertionSuccess();
}

// Every config in the search space, across shapes hitting residue tails
// (m % 8 != 0), sub-block and block-straddling N, and K % 4 tails, must be
// bitwise identical to the canonical row kernel.
TEST(DenseBlocked, BitIdenticalToMicroRowAcrossGrid) {
  uint64_t seed = 100;
  for (int64_t m : {1, 5, 8, 9, 16, 23}) {
    for (int64_t n : {1, 7, 32, 33, 130}) {
      for (int64_t k : {3, 8, 64, 257}) {
        NDArray x = Rand({m, k}, seed++), w = Rand({n, k}, seed++);
        std::vector<float> ref = RowReference(x, w, m, n, k);
        for (const auto& config : codegen::DenseConfigSpace()) {
          std::vector<float> out(static_cast<size_t>(m * n), -1.0f);
          codegen::DenseBlocked(x.data<float>(), w.data<float>(), out.data(),
                                m, n, k, config);
          ASSERT_TRUE(BitsEqual(out.data(), ref.data(), m * n))
              << "m=" << m << " n=" << n << " k=" << k << " "
              << config.ToString();
        }
      }
    }
  }
}

// Contractions past kMicroTileDepthLimit take the K-chunked lanes kernel
// (the old tile kernel drops to scalar rows there) — chunk boundaries must
// not perturb a single bit, including when block_k is not a multiple of 4.
TEST(DenseBlocked, BitIdenticalBeyondLaneDepthLimit) {
  uint64_t seed = 200;
  for (int64_t k : {codegen::kMicroTileDepthLimit + 1, int64_t{1030},
                    int64_t{2048}, int64_t{2053}}) {
    for (int64_t m : {8, 13}) {
      NDArray x = Rand({m, k}, seed++), w = Rand({40, k}, seed++);
      std::vector<float> ref = RowReference(x, w, m, 40, k);
      for (const auto& config :
           {codegen::DenseConfig{32, 64}, codegen::DenseConfig{128, 1024},
            codegen::DenseConfig{16, 100}, codegen::DenseConfig{64, 4096}}) {
        std::vector<float> out(static_cast<size_t>(m * 40), -1.0f);
        codegen::DenseBlocked(x.data<float>(), w.data<float>(), out.data(),
                              m, 40, k, config);
        ASSERT_TRUE(BitsEqual(out.data(), ref.data(), m * 40))
            << "m=" << m << " k=" << k << " " << config.ToString();
      }
    }
  }
}

TEST(DenseBlocked, CellCountMatchesDecomposition) {
  codegen::DenseConfig cfg{32, 64};
  EXPECT_EQ(codegen::DenseCellCount(16, 64, cfg), 4);   // 2 row tiles x 2 blocks
  EXPECT_EQ(codegen::DenseCellCount(17, 65, cfg), 9);   // ceil both ways
  EXPECT_EQ(codegen::DenseCellCount(1, 1, cfg), 1);
}

// The partitioned path must be bitwise identical for every thread count —
// including 1 (where the pool declines and the serial loop runs) and more
// threads than cells.
TEST(KernelPool, ParallelDenseBitIdenticalAcrossThreadCounts) {
  const int64_t m = 23, n = 130, k = 1030;  // residue rows + chunked K
  NDArray x = Rand({m, k}, 300), w = Rand({n, k}, 301);
  std::vector<float> ref = RowReference(x, w, m, n, k);
  codegen::DenseConfig config{32, 64};
  for (int threads : {1, 2, 8}) {
    codegen::KernelPool pool(threads);
    std::vector<float> out(static_cast<size_t>(m * n), -1.0f);
    bool partitioned = codegen::DenseBlockedParallel(
        x.data<float>(), w.data<float>(), out.data(), m, n, k, config, &pool);
    EXPECT_EQ(partitioned, threads > 1) << threads;
    ASSERT_TRUE(BitsEqual(out.data(), ref.data(), m * n))
        << "threads=" << threads;
    EXPECT_EQ(pool.busy(), 0);
  }
  // Null pool: same bits through the serial fallback.
  std::vector<float> out(static_cast<size_t>(m * n), -1.0f);
  EXPECT_FALSE(codegen::DenseBlockedParallel(x.data<float>(), w.data<float>(),
                                             out.data(), m, n, k, config,
                                             nullptr));
  ASSERT_TRUE(BitsEqual(out.data(), ref.data(), m * n));
}

TEST(KernelPool, TryParallelForRunsEveryTaskExactlyOnce) {
  codegen::KernelPool pool(4);
  constexpr int64_t kTasks = 1000;
  std::unique_ptr<std::atomic<int>[]> counts(new std::atomic<int>[kTasks]());
  bool ran = pool.TryParallelFor(
      kTasks, [&](int64_t i) { counts[i].fetch_add(1); });
  ASSERT_TRUE(ran);
  for (int64_t i = 0; i < kTasks; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "task " << i;
  }
  EXPECT_EQ(pool.busy(), 0);
}

TEST(KernelPool, RejectsNestedParallelism) {
  codegen::KernelPool pool(2);
  std::atomic<int> inner_ran{0}, inner_accepted{0};
  bool outer = pool.TryParallelFor(4, [&](int64_t) {
    if (pool.TryParallelFor(2, [&](int64_t) { inner_ran.fetch_add(1); })) {
      inner_accepted.fetch_add(1);
    }
  });
  EXPECT_TRUE(outer);
  EXPECT_EQ(inner_accepted.load(), 0);
  EXPECT_EQ(inner_ran.load(), 0);
}

TEST(KernelPool, PropagatesTaskExceptionAndStaysUsable) {
  codegen::KernelPool pool(2);
  EXPECT_THROW(pool.TryParallelFor(8,
                                   [](int64_t i) {
                                     if (i == 3) {
                                       throw std::runtime_error("boom");
                                     }
                                   }),
               std::runtime_error);
  std::atomic<int64_t> sum{0};
  EXPECT_TRUE(pool.TryParallelFor(4, [&](int64_t i) { sum.fetch_add(i); }));
  EXPECT_EQ(sum.load(), 6);
  EXPECT_EQ(pool.busy(), 0);
}

// The tuned/parallel-aware dispatch entry point: large-K shapes route to the
// blocked kernel, small shapes keep the exact residue-dispatch path, and
// pool-eligible calls run partitioned — all bit-identical.
TEST(DenseDispatch, TunedRunRoutesBlockedAndStaysBitIdentical) {
  codegen::DenseDispatchTable table(8);
  const int64_t m = 17, n = 64, k = 1030;  // k past the lane-depth limit
  NDArray x = Rand({m, k}, 400), w = Rand({n, k}, 401);
  std::vector<float> ref = RowReference(x, w, m, n, k);
  std::vector<float> out(static_cast<size_t>(m * n), -1.0f);
  codegen::DenseConfig config{32, 64};
  table.Run(x.data<float>(), w.data<float>(), out.data(), m, n, k, &config,
            nullptr);
  EXPECT_EQ(table.stats().blocked_calls, 1);
  EXPECT_EQ(table.stats().parallel_calls, 0);
  ASSERT_TRUE(BitsEqual(out.data(), ref.data(), m * n));
  // A small serving-sized call keeps the plain residue-dispatch path.
  NDArray xs = Rand({8, 16}, 402), ws = Rand({4, 16}, 403);
  std::vector<float> small(32, -1.0f);
  table.Run(xs.data<float>(), ws.data<float>(), small.data(), 8, 4, 16,
            &config, nullptr);
  EXPECT_EQ(table.stats().blocked_calls, 1);  // unchanged
  std::vector<float> small_ref = RowReference(xs, ws, 8, 4, 16);
  ASSERT_TRUE(BitsEqual(small.data(), small_ref.data(), 32));
}

TEST(DenseDispatch, PoolEligibleRunsPartitioned) {
  int64_t saved = codegen::DenseParallelThreshold();
  codegen::SetDenseParallelThreshold(1);  // force tiny shapes to the pool
  {
    codegen::KernelPool pool(2);
    codegen::DenseDispatchTable table(8);
    const int64_t m = 16, n = 48, k = 32;
    NDArray x = Rand({m, k}, 500), w = Rand({n, k}, 501);
    std::vector<float> ref = RowReference(x, w, m, n, k);
    std::vector<float> out(static_cast<size_t>(m * n), -1.0f);
    codegen::DenseConfig config{16, 32};
    table.Run(x.data<float>(), w.data<float>(), out.data(), m, n, k, &config,
              &pool);
    EXPECT_EQ(table.stats().blocked_calls, 1);
    EXPECT_EQ(table.stats().parallel_calls, 1);
    ASSERT_TRUE(BitsEqual(out.data(), ref.data(), m * n));
  }
  codegen::SetDenseParallelThreshold(saved);
}

TEST(Tuner, MeasureDenseConfigReturnsPositiveTime) {
  double t = codegen::MeasureDenseConfig({32, 64}, 8, 64, 64, /*repeats=*/2);
  EXPECT_GT(t, 0.0);
}

// Tune-once-per-shape: the first request measures, every later request for
// the same shape returns the memoized choice unchanged — the determinism
// the exec cache relies on when stamping variants.
TEST(TuneCache, MemoizesAndKeepsChoiceDeterministic) {
  codegen::TuneCache cache;
  auto first = cache.GetOrTune(8, 32, 32, /*repeats=*/1);
  EXPECT_TRUE(first.fresh);
  EXPECT_GT(first.seconds, 0.0);
  EXPECT_EQ(cache.size(), 1);
  auto second = cache.GetOrTune(8, 32, 32, /*repeats=*/1);
  EXPECT_FALSE(second.fresh);
  EXPECT_EQ(second.config, first.config);
  EXPECT_EQ(second.seconds, first.seconds);
  EXPECT_EQ(cache.size(), 1);
  auto third = cache.GetOrTune(8, 48, 32, /*repeats=*/1);
  EXPECT_TRUE(third.fresh);
  EXPECT_EQ(cache.size(), 2);
  bool in_space = false;
  for (const auto& c : codegen::DenseConfigSpace()) {
    if (c == first.config) in_space = true;
  }
  EXPECT_TRUE(in_space);
}

// ---- elementwise / broadcast -------------------------------------------------

TEST(Elemwise, BinaryOpsOnEqualShapes) {
  NDArray a = NDArray::FromVector<float>({1, 2, 3, 4}, {4});
  NDArray b = NDArray::FromVector<float>({4, 3, 2, 1}, {4});
  NDArray out = NDArray::Empty({4}, DataType::Float32());
  kernels::RunKernel("add", {a, b}, {out});
  EXPECT_FLOAT_EQ(out.data<float>()[0], 5.0f);
  kernels::RunKernel("subtract", {a, b}, {out});
  EXPECT_FLOAT_EQ(out.data<float>()[0], -3.0f);
  kernels::RunKernel("maximum", {a, b}, {out});
  EXPECT_FLOAT_EQ(out.data<float>()[1], 3.0f);
  kernels::RunKernel("divide", {a, b}, {out});
  EXPECT_FLOAT_EQ(out.data<float>()[3], 4.0f);
}

TEST(Elemwise, BroadcastRowVector) {
  NDArray a = NDArray::FromVector<float>({1, 2, 3, 4, 5, 6}, {2, 3});
  NDArray b = NDArray::FromVector<float>({10, 20, 30}, {3});
  NDArray out = NDArray::Empty({2, 3}, DataType::Float32());
  kernels::RunKernel("add", {a, b}, {out});
  EXPECT_FLOAT_EQ(out.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(out.at(1, 2), 36.0f);
}

TEST(Elemwise, BroadcastColumnAgainstRow) {
  NDArray a = NDArray::FromVector<float>({1, 2}, {2, 1});
  NDArray b = NDArray::FromVector<float>({10, 20, 30}, {1, 3});
  NDArray out = NDArray::Empty({2, 3}, DataType::Float32());
  kernels::RunKernel("multiply", {a, b}, {out});
  EXPECT_FLOAT_EQ(out.at(0, 2), 30.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 20.0f);
}

TEST(Elemwise, Int64ScalarArithmetic) {
  NDArray a = NDArray::Scalar<int64_t>(41);
  NDArray b = NDArray::Scalar<int64_t>(1);
  NDArray out = NDArray::Empty({}, DataType::Int64());
  kernels::RunKernel("add", {a, b}, {out});
  EXPECT_EQ(out.data<int64_t>()[0], 42);
}

TEST(Elemwise, CompareProducesBool) {
  NDArray a = NDArray::Scalar<int64_t>(3);
  NDArray b = NDArray::Scalar<int64_t>(5);
  NDArray out = NDArray::Empty({}, DataType::Bool());
  kernels::RunKernel("less", {a, b}, {out});
  EXPECT_EQ(*static_cast<uint8_t*>(out.raw_data()), 1);
  kernels::RunKernel("greater", {a, b}, {out});
  EXPECT_EQ(*static_cast<uint8_t*>(out.raw_data()), 0);
}

TEST(Elemwise, UnaryMath) {
  NDArray a = NDArray::FromVector<float>({-1.0f, 0.0f, 1.0f}, {3});
  NDArray out = NDArray::Empty({3}, DataType::Float32());
  kernels::RunKernel("sigmoid", {a}, {out});
  EXPECT_NEAR(out.data<float>()[0], 0.26894f, 1e-4f);
  EXPECT_NEAR(out.data<float>()[1], 0.5f, 1e-6f);
  kernels::RunKernel("relu", {a}, {out});
  EXPECT_FLOAT_EQ(out.data<float>()[0], 0.0f);
  EXPECT_FLOAT_EQ(out.data<float>()[2], 1.0f);
  kernels::RunKernel("tanh", {a}, {out});
  EXPECT_NEAR(out.data<float>()[2], std::tanh(1.0f), 1e-6f);
  kernels::RunKernel("gelu", {a}, {out});
  EXPECT_NEAR(out.data<float>()[1], 0.0f, 1e-6f);
}

TEST(Elemwise, CastBetweenTypes) {
  NDArray a = NDArray::FromVector<float>({1.7f, -2.3f}, {2});
  NDArray out = NDArray::Empty({2}, DataType::Int64());
  kernels::RunKernel("cast", {a}, {out}, ir::Attrs().Set("dtype", std::string("int64")));
  EXPECT_EQ(out.data<int64_t>()[0], 1);
  EXPECT_EQ(out.data<int64_t>()[1], -2);
}

// ---- nn kernels --------------------------------------------------------------

TEST(NN, SoftmaxRowsSumToOne) {
  NDArray x = Rand({3, 7}, 11);
  NDArray out = NDArray::Empty({3, 7}, DataType::Float32());
  kernels::RunKernel("nn.softmax", {x}, {out});
  for (int64_t r = 0; r < 3; ++r) {
    float sum = 0.0f;
    for (int64_t c = 0; c < 7; ++c) sum += out.at(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(NN, SoftmaxIsShiftInvariant) {
  NDArray x = NDArray::FromVector<float>({1000.0f, 1001.0f}, {1, 2});
  NDArray out = NDArray::Empty({1, 2}, DataType::Float32());
  kernels::RunKernel("nn.softmax", {x}, {out});
  EXPECT_NEAR(out.at(0, 0) + out.at(0, 1), 1.0f, 1e-5f);
  EXPECT_GT(out.at(0, 1), out.at(0, 0));
}

TEST(NN, LayerNormNormalizesRows) {
  NDArray x = Rand({2, 16}, 12);
  NDArray g = NDArray::Empty({16}, DataType::Float32());
  NDArray b = NDArray::Empty({16}, DataType::Float32());
  g.Fill(1.0);
  b.Fill(0.0);
  NDArray out = NDArray::Empty({2, 16}, DataType::Float32());
  kernels::RunKernel("nn.layer_norm", {x, g, b}, {out});
  for (int64_t r = 0; r < 2; ++r) {
    float mean = 0, var = 0;
    for (int64_t c = 0; c < 16; ++c) mean += out.at(r, c);
    mean /= 16;
    for (int64_t c = 0; c < 16; ++c) var += (out.at(r, c) - mean) * (out.at(r, c) - mean);
    var /= 16;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

TEST(NN, LSTMCellMatchesScalarMath) {
  int64_t H = 3;
  NDArray gates = Rand({1, 4 * H}, 13);
  NDArray c = Rand({1, H}, 14);
  NDArray h_out = NDArray::Empty({1, H}, DataType::Float32());
  NDArray c_out = NDArray::Empty({1, H}, DataType::Float32());
  kernels::RunKernel("nn.lstm_cell", {gates, c}, {h_out, c_out});
  auto sig = [](float v) { return 1.0f / (1.0f + std::exp(-v)); };
  for (int64_t j = 0; j < H; ++j) {
    const float* g = gates.data<float>();
    float cn = sig(g[H + j]) * c.data<float>()[j] +
               sig(g[j]) * std::tanh(g[2 * H + j]);
    EXPECT_NEAR(c_out.data<float>()[j], cn, 1e-5f);
    EXPECT_NEAR(h_out.data<float>()[j], sig(g[3 * H + j]) * std::tanh(cn), 1e-5f);
  }
}

TEST(NN, BatchMatmulAgainstLoop) {
  NDArray a = Rand({2, 3, 4}, 15), b = Rand({2, 5, 4}, 16);
  NDArray out = NDArray::Empty({2, 3, 5}, DataType::Float32());
  kernels::RunKernel("nn.batch_matmul", {a, b}, {out});
  for (int64_t bi = 0; bi < 2; ++bi) {
    for (int64_t i = 0; i < 3; ++i) {
      for (int64_t j = 0; j < 5; ++j) {
        float acc = 0;
        for (int64_t kk = 0; kk < 4; ++kk) {
          acc += a.data<float>()[(bi * 3 + i) * 4 + kk] *
                 b.data<float>()[(bi * 5 + j) * 4 + kk];
        }
        EXPECT_NEAR(out.data<float>()[(bi * 3 + i) * 5 + j], acc, 1e-4f);
      }
    }
  }
}

TEST(NN, NMSSuppressesOverlaps) {
  // Three boxes: two heavily overlapping, one separate.
  NDArray boxes = NDArray::FromVector<float>(
      {0.9f, 0, 0, 10, 10,   // kept (highest score)
       0.8f, 1, 1, 11, 11,   // suppressed (IoU with first is high)
       0.7f, 50, 50, 60, 60},// kept (disjoint)
      {3, 5});
  NDArray kept = NDArray::Empty({3, 5}, DataType::Float32());
  NDArray count = NDArray::Empty({}, DataType::Int64());
  kernels::RunKernel("nn.nms", {boxes}, {kept, count},
                     ir::Attrs().Set("iou_threshold", 0.5));
  EXPECT_EQ(count.data<int64_t>()[0], 2);
  EXPECT_FLOAT_EQ(kept.at(0, 0), 0.9f);
  EXPECT_FLOAT_EQ(kept.at(1, 0), 0.7f);
}

// ---- manipulation / dynamic kernels -------------------------------------------

TEST(Manip, ConcatAxis0And1) {
  NDArray a = NDArray::FromVector<float>({1, 2, 3, 4}, {2, 2});
  NDArray b = NDArray::FromVector<float>({5, 6}, {1, 2});
  NDArray out = NDArray::Empty({3, 2}, DataType::Float32());
  kernels::RunKernel("concat", {a, b}, {out}, ir::Attrs().Set("axis", 0));
  EXPECT_FLOAT_EQ(out.at(2, 1), 6.0f);

  NDArray c = NDArray::FromVector<float>({7, 8}, {2, 1});
  NDArray out2 = NDArray::Empty({2, 3}, DataType::Float32());
  kernels::RunKernel("concat", {a, c}, {out2}, ir::Attrs().Set("axis", 1));
  EXPECT_FLOAT_EQ(out2.at(0, 2), 7.0f);
  EXPECT_FLOAT_EQ(out2.at(1, 0), 3.0f);
}

TEST(Manip, SplitIsConcatInverse) {
  NDArray x = Rand({2, 8}, 17);
  NDArray p0 = NDArray::Empty({2, 4}, DataType::Float32());
  NDArray p1 = NDArray::Empty({2, 4}, DataType::Float32());
  kernels::RunKernel("split", {x}, {p0, p1},
                     ir::Attrs().Set("sections", 2).Set("axis", 1));
  NDArray back = NDArray::Empty({2, 8}, DataType::Float32());
  kernels::RunKernel("concat", {p0, p1}, {back}, ir::Attrs().Set("axis", 1));
  for (int64_t i = 0; i < 16; ++i) {
    EXPECT_FLOAT_EQ(back.data<float>()[i], x.data<float>()[i]);
  }
}

TEST(Manip, TakeGathersRows) {
  NDArray data = NDArray::FromVector<float>({1, 2, 3, 4, 5, 6}, {3, 2});
  NDArray idx = NDArray::FromVector<int64_t>({2, 0}, {2});
  NDArray out = NDArray::Empty({2, 2}, DataType::Float32());
  kernels::RunKernel("take", {data, idx}, {out});
  EXPECT_FLOAT_EQ(out.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 2.0f);
  NDArray bad = NDArray::FromVector<int64_t>({3}, {1});
  NDArray out2 = NDArray::Empty({1, 2}, DataType::Float32());
  EXPECT_THROW(kernels::RunKernel("take", {data, bad}, {out2}), Error);
}

TEST(Manip, TransposeRoundtrip) {
  NDArray x = Rand({2, 3, 4}, 18);
  NDArray t = NDArray::Empty({4, 2, 3}, DataType::Float32());
  kernels::RunKernel("transpose", {x}, {t},
                     ir::Attrs().Set("axes", std::vector<int64_t>{2, 0, 1}));
  NDArray back = NDArray::Empty({2, 3, 4}, DataType::Float32());
  kernels::RunKernel("transpose", {t}, {back},
                     ir::Attrs().Set("axes", std::vector<int64_t>{1, 2, 0}));
  for (int64_t i = 0; i < x.num_elements(); ++i) {
    EXPECT_FLOAT_EQ(back.data<float>()[i], x.data<float>()[i]);
  }
}

TEST(Dynamic, ArangeValues) {
  NDArray start = NDArray::Scalar<int64_t>(2);
  NDArray stop = NDArray::Scalar<int64_t>(11);
  NDArray step = NDArray::Scalar<int64_t>(3);
  NDArray out = NDArray::Empty({3}, DataType::Int64());
  kernels::RunKernel("arange", {start, stop, step}, {out});
  EXPECT_EQ(out.data<int64_t>()[0], 2);
  EXPECT_EQ(out.data<int64_t>()[1], 5);
  EXPECT_EQ(out.data<int64_t>()[2], 8);
}

TEST(Dynamic, UniqueSortsAndDedups) {
  NDArray x = NDArray::FromVector<int64_t>({5, 1, 5, 3, 1}, {5});
  NDArray out = NDArray::Empty({3}, DataType::Int64());
  kernels::RunKernel("unique", {x}, {out});
  EXPECT_EQ(out.data<int64_t>()[0], 1);
  EXPECT_EQ(out.data<int64_t>()[1], 3);
  EXPECT_EQ(out.data<int64_t>()[2], 5);
}

// ---- fused kernels -----------------------------------------------------------

TEST(Fused, DenseEpilogueMatchesUnfused) {
  NDArray x = Rand({3, 5}, 19), w = Rand({4, 5}, 20);
  NDArray bias = Rand({4}, 21);
  NDArray fused = NDArray::Empty({3, 4}, DataType::Float32());
  ir::Attrs attrs;
  attrs.Set("steps", std::vector<int64_t>{0, 3, 2, 6, 0, 0});  // +bias; sigmoid
  kernels::RunKernel("fused_dense", {x, w, bias}, {fused}, attrs);

  NDArray d = NDArray::Empty({3, 4}, DataType::Float32());
  kernels::RunKernel("nn.dense_ref", {x, w}, {d});
  NDArray ba = NDArray::Empty({3, 4}, DataType::Float32());
  kernels::RunKernel("nn.bias_add", {d, bias}, {ba});
  NDArray expect = NDArray::Empty({3, 4}, DataType::Float32());
  kernels::RunKernel("sigmoid", {ba}, {expect});
  for (int64_t i = 0; i < 12; ++i) {
    EXPECT_NEAR(fused.data<float>()[i], expect.data<float>()[i], 1e-4f);
  }
}

TEST(Fused, ElemwiseChainWithScalarAndTensor) {
  NDArray root = Rand({6}, 22);
  NDArray other = Rand({6}, 23);
  NDArray scalar = NDArray::Scalar<float>(2.0f);
  NDArray out = NDArray::Empty({6}, DataType::Float32());
  ir::Attrs attrs;
  // ((root * 2) + other) then tanh
  attrs.Set("steps", std::vector<int64_t>{2, 2, 2, 0, 1, 1, 7, 0, 0});
  kernels::RunKernel("fused_elemwise", {root, other, scalar}, {out}, attrs);
  for (int64_t i = 0; i < 6; ++i) {
    float expect = std::tanh(root.data<float>()[i] * 2.0f + other.data<float>()[i]);
    EXPECT_NEAR(out.data<float>()[i], expect, 1e-5f);
  }
}

TEST(Fused, MalformedStepsRejected) {
  NDArray a = Rand({2}, 24);
  NDArray out = NDArray::Empty({2}, DataType::Float32());
  ir::Attrs attrs;
  attrs.Set("steps", std::vector<int64_t>{0, 1});  // not a multiple of 3
  EXPECT_THROW(kernels::RunKernel("fused_elemwise", {a}, {out}, attrs), Error);
}

TEST(KernelRegistry, UnknownKernelThrows) {
  EXPECT_THROW(kernels::RunKernel("no.such.kernel", {}, {}), Error);
}

}  // namespace
}  // namespace nimble
