// Property-style randomized scheduler testing utilities.
//
// Serving schedulers fail on *schedules*, not on single requests: a retire
// and a splice landing on the same step boundary, a burst overflowing the
// slot map while a straggler drains, a length-1 request arriving behind a
// maximal one. Hand-written tests enumerate the schedules someone thought
// of; this header generates the rest. A FuzzSchedule is a deterministic
// function of its seed — lengths and inter-arrival gaps drawn from one of
// three generator flavors — so every failure is replayable:
//
//   FuzzSchedule s = schedfuzz::MakeSchedule(seed, n, max_len);
//   ... drive the scheduler under test, assert its invariants ...
//   ASSERT_...(...) << s.Describe();   // prints "seed=... flavor=..."
//
// On failure the assertion message carries the seed; rerun the same build
// with that seed (tests/sched_harness.cc takes --seed, the gtest smoke
// tests hardcode theirs) and the identical schedule replays. Flavors:
//
//   kPoisson     independent exponential gaps — the "nothing special"
//                steady-state traffic every scheduler must get right;
//   kBursty      tight bursts separated by idle gaps — overflows admission
//                into queue backpressure, then drains to an empty batch
//                (exercises the blocking-admit path and occupancy swings);
//   kAdversarial boundary lengths (1, 2, max) in hostile orders, near-zero
//                gaps — maximizes same-boundary retire+splice collisions
//                and length-extremes sharing one batch.
//
// Used by tests/test_continuous.cc and tests/sched_harness.cc (continuous
// batching), and retrofitted onto the bucketed-scheduler tests in
// tests/test_serve.cc — the generators are scheduler-agnostic: they
// produce (length, gap) pairs, not slot-map specifics.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "src/support/rng.h"

namespace nimble {
namespace schedfuzz {

/// One generated request: a sequence length and the delay between the
/// previous submission and this one (the first request's gap is the delay
/// from test start).
struct FuzzRequest {
  int64_t length = 1;
  int64_t arrival_gap_us = 0;
};

enum class ArrivalFlavor { kPoisson, kBursty, kAdversarial };

inline const char* FlavorName(ArrivalFlavor flavor) {
  switch (flavor) {
    case ArrivalFlavor::kPoisson: return "poisson";
    case ArrivalFlavor::kBursty: return "bursty";
    case ArrivalFlavor::kAdversarial: return "adversarial";
  }
  return "?";
}

struct FuzzSchedule {
  uint64_t seed = 0;
  ArrivalFlavor flavor = ArrivalFlavor::kPoisson;
  std::vector<FuzzRequest> requests;

  /// Replay line for failure messages: everything needed to regenerate
  /// this exact schedule.
  std::string Describe() const {
    std::ostringstream os;
    os << "[sched_fuzz replay: seed=" << seed << " flavor="
       << FlavorName(flavor) << " n=" << requests.size()
       << " — rerun sched_harness with --seed " << seed << "]";
    return os.str();
  }
};

/// Deterministically generates `num_requests` (length, gap) pairs from
/// `seed` with the given flavor. Lengths are always in [1, max_len] with
/// the boundary values reachable from every flavor.
inline FuzzSchedule MakeSchedule(uint64_t seed, int num_requests,
                                 int64_t max_len, ArrivalFlavor flavor) {
  FuzzSchedule schedule;
  schedule.seed = seed;
  schedule.flavor = flavor;
  schedule.requests.reserve(static_cast<size_t>(num_requests));
  // Derive the stream from both seed and flavor so the same seed yields
  // different (but individually deterministic) schedules per flavor.
  support::Rng rng(seed ^ (0x9e3779b97f4a7c15ull *
                           (static_cast<uint64_t>(flavor) + 1)));
  switch (flavor) {
    case ArrivalFlavor::kPoisson: {
      // Exponential inter-arrival gaps around a per-schedule mean; length
      // uniform. The mean spans "faster than a step" to "slower than a
      // whole short request" so occupancy drifts across the schedule.
      double mean_gap_us = rng.Uniform(20.0, 800.0);
      for (int i = 0; i < num_requests; ++i) {
        FuzzRequest r;
        r.length = rng.UniformInt(1, max_len);
        double u = rng.Uniform();
        if (u < 1e-12) u = 1e-12;
        r.arrival_gap_us =
            static_cast<int64_t>(-mean_gap_us * __builtin_log(u));
        schedule.requests.push_back(r);
      }
      break;
    }
    case ArrivalFlavor::kBursty: {
      // Bursts of back-to-back arrivals separated by idle gaps long enough
      // for the batch to fully drain — admission oscillates between
      // overflow (queue backpressure) and empty (blocking pop).
      int remaining_in_burst = 0;
      for (int i = 0; i < num_requests; ++i) {
        FuzzRequest r;
        r.length = rng.UniformInt(1, max_len);
        if (remaining_in_burst == 0) {
          remaining_in_burst = static_cast<int>(rng.UniformInt(2, 12));
          r.arrival_gap_us = rng.UniformInt(500, 5000);  // idle gap
        } else {
          r.arrival_gap_us = 0;  // inside the burst
        }
        --remaining_in_burst;
        schedule.requests.push_back(r);
      }
      break;
    }
    case ArrivalFlavor::kAdversarial: {
      // Boundary lengths in hostile orders with near-zero gaps: floods of
      // length-1 requests (every step retires AND splices), a wall of
      // maximal requests (slots pinned while the queue backs up), and
      // strict alternation (maximal churn at one boundary).
      for (int i = 0; i < num_requests; ++i) {
        FuzzRequest r;
        switch (rng.UniformInt(0, 3)) {
          case 0: r.length = 1; break;
          case 1: r.length = max_len; break;
          case 2: r.length = rng.UniformInt(1, max_len > 1 ? 2 : 1); break;
          default:
            r.length = rng.UniformInt(max_len > 1 ? max_len - 1 : 1, max_len);
            break;
        }
        // Mostly immediate; an occasional pause lets the batch drain so
        // the next flood hits an empty slot map.
        r.arrival_gap_us =
            rng.Uniform() < 0.05 ? rng.UniformInt(500, 2000) : 0;
        schedule.requests.push_back(r);
      }
      break;
    }
  }
  return schedule;
}

/// Flavor picked from the seed as well: the harness just iterates seeds
/// and sweeps all three generator families.
inline FuzzSchedule MakeSchedule(uint64_t seed, int num_requests,
                                 int64_t max_len) {
  auto flavor = static_cast<ArrivalFlavor>(seed % 3);
  return MakeSchedule(seed, num_requests, max_len, flavor);
}

}  // namespace schedfuzz
}  // namespace nimble
