// Unit tests for nimble::support (checks, union-find, rng).
#include <gtest/gtest.h>

#include <set>

#include "src/support/logging.h"
#include "src/support/rng.h"
#include "src/support/union_find.h"

namespace nimble {
namespace {

TEST(Logging, CheckThrowsOnFailure) {
  EXPECT_THROW(NIMBLE_CHECK(false) << "boom", Error);
  EXPECT_NO_THROW(NIMBLE_CHECK(true) << "fine");
}

TEST(Logging, CheckMessageIncludesDetail) {
  try {
    NIMBLE_CHECK_EQ(1, 2) << "context";
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("context"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 vs 2"), std::string::npos);
  }
}

TEST(Logging, ComparisonMacros) {
  EXPECT_NO_THROW(NIMBLE_CHECK_LT(1, 2));
  EXPECT_THROW(NIMBLE_CHECK_LT(2, 1), Error);
  EXPECT_NO_THROW(NIMBLE_CHECK_GE(2, 2));
  EXPECT_THROW(NIMBLE_CHECK_GT(2, 2), Error);
  EXPECT_NO_THROW(NIMBLE_CHECK_NE(1, 2));
}

TEST(UnionFind, SingletonsAreDistinct) {
  support::UnionFind uf(4);
  EXPECT_FALSE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(2, 3));
  EXPECT_TRUE(uf.Connected(1, 1));
}

TEST(UnionFind, UnionConnects) {
  support::UnionFind uf(5);
  uf.Union(0, 1);
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(0, 3));
}

TEST(UnionFind, MakeExtends) {
  support::UnionFind uf(2);
  size_t id = uf.Make();
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(uf.size(), 3u);
  uf.Union(0, id);
  EXPECT_TRUE(uf.Connected(0, id));
}

TEST(UnionFind, TransitiveChains) {
  support::UnionFind uf(64);
  for (size_t i = 0; i + 1 < 64; ++i) uf.Union(i, i + 1);
  EXPECT_TRUE(uf.Connected(0, 63));
}

TEST(UnionFind, FindOutOfRangeThrows) {
  support::UnionFind uf(2);
  EXPECT_THROW(uf.Find(5), Error);
}

TEST(Rng, DeterministicForSeed) {
  support::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  support::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInRange) {
  support::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  support::Rng rng(8);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(0, 4);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u) << "all values in [0,4] should appear";
}

TEST(Rng, NormalHasReasonableMoments) {
  support::Rng rng(9);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

}  // namespace
}  // namespace nimble
