// Unit tests for the IR: dims, types, expressions, modules, ADTs, printer,
// visitors, free variables.
#include <gtest/gtest.h>

#include "src/ir/module.h"
#include "src/ir/printer.h"
#include "src/ir/visitor.h"
#include "src/op/registry.h"

namespace nimble {
namespace {

using namespace ir;  // NOLINT

TEST(DimTest, Kinds) {
  EXPECT_TRUE(Dim::Static(3).is_static());
  EXPECT_TRUE(Dim::Any().is_any());
  EXPECT_TRUE(Dim::Any().is_dynamic());
  EXPECT_TRUE(Dim::Sym(1).is_sym());
  EXPECT_FALSE(Dim::Static(3).is_dynamic());
  EXPECT_THROW(Dim::Static(-1), Error);
}

TEST(DimTest, StructEqualSemantics) {
  EXPECT_TRUE(Dim::Static(4).StructEqual(Dim::Static(4)));
  EXPECT_FALSE(Dim::Static(4).StructEqual(Dim::Static(5)));
  // Two Anys are not provably the same dimension (§4.1).
  EXPECT_FALSE(Dim::Any().StructEqual(Dim::Any()));
  // But identical symbolic dims are.
  Dim s = Dim::FreshSym("L");
  EXPECT_TRUE(s.StructEqual(s));
  EXPECT_FALSE(s.StructEqual(Dim::FreshSym("L")));
}

TEST(DimTest, FreshSymIdsAreUnique) {
  EXPECT_NE(Dim::FreshSym().sym_id(), Dim::FreshSym().sym_id());
}

TEST(DimTest, Printing) {
  EXPECT_EQ(Dim::Static(7).ToString(), "7");
  EXPECT_EQ(Dim::Any().ToString(), "?");
  EXPECT_EQ(Dim::Sym(3, "L").ToString(), "'L");
}

TEST(TypeTest, TensorTypeToString) {
  Type t = TensorType({Dim::Static(1), Dim::Any()});
  EXPECT_EQ(TypeToString(t), "Tensor[(1, ?), float32]");
}

TEST(TypeTest, EqualityStrictVsCompatible) {
  Type concrete = TensorType({3, 4});
  Type dynamic = TensorType({Dim::Static(3), Dim::Any()});
  EXPECT_FALSE(TypeEqual(concrete, dynamic));
  // Sub-shaping: specific flows into less specific (§4.1).
  EXPECT_TRUE(TypeCompatible(concrete, dynamic));
  EXPECT_FALSE(TypeCompatible(concrete, TensorType({4, 4})));
}

TEST(TypeTest, TupleAndFuncTypes) {
  Type t = TupleType({TensorType(std::vector<int64_t>{1}), ScalarType(DataType::Int64())});
  EXPECT_EQ(AsTupleType(t)->fields.size(), 2u);
  Type f = FuncType({TensorType(std::vector<int64_t>{2})}, TensorType(std::vector<int64_t>{2}));
  EXPECT_EQ(AsFuncType(f)->params.size(), 1u);
  EXPECT_THROW(AsTensorType(t), Error);
}

TEST(TypeTest, HasDynamicShape) {
  EXPECT_FALSE(HasDynamicShape(TensorType({2, 2})));
  EXPECT_TRUE(HasDynamicShape(TensorType({Dim::Any()})));
  EXPECT_TRUE(
      HasDynamicShape(TupleType({TensorType(std::vector<int64_t>{2}), TensorType({Dim::Any()})})));
}

TEST(ExprTest, ConstructorsAndDowncasts) {
  Var v = MakeVar("x", TensorType(std::vector<int64_t>{2}));
  Expr c = FloatConst(1.0f);
  Expr call = op::Call2("add", v, c);
  EXPECT_EQ(call->kind(), ExprKind::kCall);
  EXPECT_EQ(AsCall(call)->args.size(), 2u);
  EXPECT_EQ(AsOp(AsCall(call)->op)->name, "add");
  EXPECT_TRUE(IsCallToOp(call, "add"));
  EXPECT_FALSE(IsCallToOp(call, "multiply"));
  EXPECT_THROW(AsLet(call), Error);
}

TEST(ExprTest, ScalarConstants) {
  EXPECT_EQ(AsConstant(IntConst(5))->data.data<int64_t>()[0], 5);
  EXPECT_FLOAT_EQ(AsConstant(FloatConst(2.5f))->data.data<float>()[0], 2.5f);
  EXPECT_EQ(AsConstant(BoolConst(true))->data.dtype(), DataType::Bool());
}

TEST(ModuleTest, AddLookupUpdate) {
  Module mod;
  Var x = MakeVar("x", TensorType(std::vector<int64_t>{1}));
  mod.Add("f", MakeFunction({x}, x));
  EXPECT_TRUE(mod.HasFunction("f"));
  EXPECT_EQ(mod.Lookup("f")->params.size(), 1u);
  EXPECT_THROW(mod.Lookup("g"), Error);
  EXPECT_THROW(mod.Update("g", mod.Lookup("f")), Error);
}

TEST(ModuleTest, ADTDefinitionAndLookup) {
  Module mod;
  const TypeData& tree = mod.DefineADT(
      "Tree", {{"Leaf", {TensorType(std::vector<int64_t>{1})}},
               {"Node", {ADTType("Tree"), ADTType("Tree")}}});
  EXPECT_EQ(tree.constructors.size(), 2u);
  EXPECT_EQ(tree.constructors[0]->tag, 0u);
  EXPECT_EQ(tree.constructors[1]->tag, 1u);
  EXPECT_EQ(mod.LookupConstructor("Tree", "Node")->name, "Node");
  EXPECT_THROW(mod.LookupConstructor("Tree", "Branch"), Error);
  EXPECT_THROW(mod.DefineADT("Tree", {}), Error);
}

TEST(PrinterTest, RendersLetAndIf) {
  Var x = MakeVar("x", TensorType(std::vector<int64_t>{2}));
  Var t = MakeVar("t");
  Expr body = MakeLet(t, op::Call2("add", x, x),
                      MakeIf(BoolConst(true), t, x));
  std::string s = PrintExpr(MakeFunction({x}, body));
  EXPECT_NE(s.find("let %t"), std::string::npos);
  EXPECT_NE(s.find("if ("), std::string::npos);
  EXPECT_NE(s.find("add(%x, %x)"), std::string::npos);
}

TEST(PrinterTest, DisambiguatesDuplicateNames) {
  Var a = MakeVar("x", TensorType(std::vector<int64_t>{1}));
  Var b = MakeVar("x", TensorType(std::vector<int64_t>{1}));
  std::string s = PrintExpr(MakeFunction({a, b}, op::Call2("add", a, b)));
  // Two distinct vars named "x" must print distinctly.
  EXPECT_NE(s.find("%x_"), std::string::npos);
}

TEST(VisitorTest, PostOrderVisitsAllNodes) {
  Var x = MakeVar("x", TensorType(std::vector<int64_t>{2}));
  Expr e = op::Call1("sigmoid", op::Call2("add", x, FloatConst(1.0f)));
  int count = 0;
  PostOrderVisit(e, [&](const Expr&) { count++; });
  // sigmoid-call, add-call, two ops, var, const = 6 nodes.
  EXPECT_EQ(count, 6);
}

TEST(VisitorTest, MutatorPreservesUnchangedSubtrees) {
  struct Identity : ExprMutator {} m;
  Var x = MakeVar("x", TensorType(std::vector<int64_t>{2}));
  Expr e = op::Call2("add", x, x);
  EXPECT_EQ(m.Mutate(e).get(), e.get()) << "no-op mutation returns same node";
}

TEST(VisitorTest, MutatorRewritesTargetedNodes) {
  struct SwapAddToMul : ExprMutator {
    Expr MutateCall_(const CallNode* node, const Expr& e) override {
      Expr base = ExprMutator::MutateCall_(node, e);
      if (IsCallToOp(base, "add")) {
        const auto* call = AsCall(base);
        return MakeCall(op::GetOp("multiply"), call->args, call->attrs);
      }
      return base;
    }
  } m;
  Var x = MakeVar("x", TensorType(std::vector<int64_t>{2}));
  Expr rewritten = m.Mutate(op::Call2("add", x, x));
  EXPECT_TRUE(IsCallToOp(rewritten, "multiply"));
}

TEST(FreeVarsTest, ParamsAreBound) {
  Var x = MakeVar("x", TensorType(std::vector<int64_t>{2}));
  Var y = MakeVar("y", TensorType(std::vector<int64_t>{2}));
  Expr fn = MakeFunction({x}, op::Call2("add", x, y));
  auto free = FreeVars(fn);
  ASSERT_EQ(free.size(), 1u);
  EXPECT_EQ(free[0].get(), y.get());
}

TEST(FreeVarsTest, LetBindsItsVar) {
  Var t = MakeVar("t");
  Var z = MakeVar("z", TensorType(std::vector<int64_t>{2}));
  Expr e = MakeLet(t, z, op::Call2("add", t, t));
  auto free = FreeVars(e);
  ASSERT_EQ(free.size(), 1u);
  EXPECT_EQ(free[0].get(), z.get());
}

TEST(FreeVarsTest, MatchClauseBindings) {
  Module mod;
  const TypeData& data = mod.DefineADT("P", {{"Mk", {TensorType(std::vector<int64_t>{1})}}});
  Var scrut = MakeVar("s", ADTType("P"));
  Var bound = MakeVar("b");
  Expr m = MakeMatch(scrut, {MatchClause{data.constructors[0], {bound}, bound}});
  auto free = FreeVars(m);
  ASSERT_EQ(free.size(), 1u);
  EXPECT_EQ(free[0].get(), scrut.get());
}

TEST(AttrsTest, TypedAccessors) {
  Attrs attrs;
  attrs.Set("axis", 2).Set("name", std::string("foo"));
  attrs.Set("shape", std::vector<int64_t>{1, 2});
  attrs.Set("eps", 0.5);
  EXPECT_EQ(attrs.GetInt("axis"), 2);
  EXPECT_EQ(attrs.GetInt("missing", 7), 7);
  EXPECT_EQ(attrs.GetStr("name"), "foo");
  EXPECT_EQ(attrs.GetIntVec("shape"), (std::vector<int64_t>{1, 2}));
  EXPECT_DOUBLE_EQ(attrs.GetFloat("eps", 0), 0.5);
  EXPECT_THROW(attrs.GetInt("name"), std::exception);
}

TEST(AttrsTest, DeviceRoundtrip) {
  Attrs attrs;
  attrs.SetDevice("device", runtime::Device::SimGPU(1));
  EXPECT_EQ(attrs.GetDevice("device", runtime::Device::CPU()),
            runtime::Device::SimGPU(1));
}

}  // namespace
}  // namespace nimble
