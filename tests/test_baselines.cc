// Baseline correctness: the eager, Fold and static runtimes must all agree
// with the plain references — otherwise latency comparisons are meaningless.
#include <gtest/gtest.h>

#include "src/baselines/eager.h"
#include "src/baselines/fold.h"
#include "src/baselines/static_runtime.h"
#include "src/models/workloads.h"

namespace nimble {
namespace {

using runtime::NDArray;

void ExpectClose(const NDArray& a, const NDArray& b, float tol = 2e-4f) {
  ASSERT_EQ(a.shape(), b.shape());
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    ASSERT_NEAR(a.data<float>()[i], b.data<float>()[i], tol) << "index " << i;
  }
}

TEST(EagerBaseline, LSTMMatchesReference) {
  models::LSTMConfig config;
  config.input_size = 10;
  config.hidden_size = 12;
  config.num_layers = 2;
  auto model = models::BuildLSTM(config);
  support::Rng rng(1);
  NDArray x = models::RandomSequence(6, config.input_size, rng);
  baselines::EagerContext ctx(/*dispatch_overhead_ns=*/0);
  ExpectClose(baselines::EagerLSTM(model.weights, x, ctx),
              models::RunLSTMReference(model.weights, x));
  EXPECT_GT(ctx.ops_executed(), 0);
}

TEST(EagerBaseline, TreeLSTMMatchesReference) {
  models::TreeLSTMConfig config;
  config.input_size = 8;
  config.hidden_size = 10;
  auto model = models::BuildTreeLSTM(config);
  support::Rng rng(2);
  for (int leaves : {1, 5, 12}) {
    auto tree = models::RandomTree(leaves, config.input_size, rng);
    baselines::EagerContext ctx(0);
    ExpectClose(baselines::EagerTreeLSTM(model.weights, *tree, ctx),
                models::RunTreeLSTMReference(model.weights, *tree));
  }
}

TEST(EagerBaseline, BERTMatchesReference) {
  models::BERTConfig config;
  config.num_layers = 1;
  config.hidden = 32;
  config.num_heads = 2;
  config.ffn_hidden = 64;
  config.vocab = 40;
  auto model = models::BuildBERT(config);
  support::Rng rng(3);
  auto ids = models::RandomTokenIds(9, config.vocab, rng);
  baselines::EagerContext ctx(0);
  ExpectClose(baselines::EagerBERT(model, ids, ctx),
              models::RunBERTReference(model, ids), 5e-4f);
}

TEST(FoldBaseline, MatchesReferenceAcrossTreeShapes) {
  models::TreeLSTMConfig config;
  config.input_size = 8;
  config.hidden_size = 10;
  auto model = models::BuildTreeLSTM(config);
  support::Rng rng(4);
  for (int leaves : {1, 2, 7, 20}) {
    auto tree = models::RandomTree(leaves, config.input_size, rng);
    baselines::FoldStats stats;
    ExpectClose(baselines::FoldTreeLSTM(model.weights, *tree, &stats),
                models::RunTreeLSTMReference(model.weights, *tree));
    EXPECT_EQ(stats.nodes_scheduled, tree->num_nodes());
  }
}

TEST(FoldBaseline, BatchesPerLevel) {
  models::TreeLSTMConfig config;
  config.input_size = 4;
  config.hidden_size = 6;
  auto model = models::BuildTreeLSTM(config);
  support::Rng rng(5);
  auto tree = models::RandomTree(16, config.input_size, rng);
  baselines::FoldStats stats;
  baselines::FoldTreeLSTM(model.weights, *tree, &stats);
  EXPECT_LT(stats.batched_launches, stats.nodes_scheduled)
      << "dynamic batching must launch fewer kernels than nodes";
}

TEST(StaticRuntime, MatchesReferenceAtPlannedLength) {
  models::BERTConfig config;
  config.num_layers = 1;
  config.hidden = 32;
  config.num_heads = 2;
  config.ffn_hidden = 64;
  config.vocab = 40;
  auto model = models::BuildBERT(config);
  support::Rng rng(6);
  auto ids = models::RandomTokenIds(11, config.vocab, rng);
  baselines::StaticBERTRuntime rt(model, 11);
  ExpectClose(rt.Run(ids), models::RunBERTReference(model, ids), 5e-4f);
}

TEST(StaticRuntime, RejectsOtherLengths) {
  models::BERTConfig config;
  config.num_layers = 1;
  config.hidden = 32;
  config.num_heads = 2;
  config.ffn_hidden = 64;
  config.vocab = 40;
  auto model = models::BuildBERT(config);
  baselines::StaticBERTRuntime rt(model, 8);
  EXPECT_THROW(rt.Run(std::vector<int64_t>(9, 0)), Error);
}

TEST(Workloads, DistributionsHaveDocumentedShape) {
  support::Rng rng(7);
  auto lengths = models::SampleMRPCLengths(500, rng, 128);
  double mean = 0;
  for (int64_t l : lengths) {
    EXPECT_GE(l, 4);
    EXPECT_LE(l, 128);
    mean += static_cast<double>(l);
  }
  mean /= lengths.size();
  EXPECT_NEAR(mean, 40.0, 5.0);

  auto sizes = models::SampleSSTSizes(500, rng);
  double smean = 0;
  for (int s : sizes) {
    EXPECT_GE(s, 3);
    EXPECT_LE(s, 52);
    smean += s;
  }
  smean /= sizes.size();
  EXPECT_NEAR(smean, 19.0, 3.0);
}

}  // namespace
}  // namespace nimble
