// Runtime shape functions (§4.2): all three modes, exercised directly
// through the op registry the way the VM's shape-function packed calls do.
#include <gtest/gtest.h>

#include "src/op/registry.h"
#include "src/runtime/ndarray.h"

namespace nimble {
namespace {

using op::OpRegistry;
using op::ShapeFuncMode;
using runtime::DataType;
using runtime::NDArray;
using runtime::ShapeVec;

std::vector<ShapeVec> RunShapeFn(const std::string& op,
                                 const std::vector<ShapeVec>& in_shapes,
                                 const std::vector<NDArray>& in_data = {},
                                 const ir::Attrs& attrs = {}) {
  op::EnsureOpsRegistered();
  const auto& info = OpRegistry::Global()->Get(op);
  return info.shape_fn(in_shapes, in_data, attrs);
}

// ---- data-independent mode ---------------------------------------------------

TEST(ShapeFunc, BroadcastFollowsNumpyRules) {
  EXPECT_EQ(RunShapeFn("add", {{2, 3}, {3}})[0], (ShapeVec{2, 3}));
  EXPECT_EQ(RunShapeFn("add", {{4, 1}, {1, 5}})[0], (ShapeVec{4, 5}));
  EXPECT_EQ(RunShapeFn("add", {{}, {7}})[0], (ShapeVec{7}));
  EXPECT_THROW(RunShapeFn("add", {{3}, {4}}), Error);
}

TEST(ShapeFunc, DenseAndBatchMatmul) {
  EXPECT_EQ(RunShapeFn("nn.dense", {{9, 16}, {32, 16}})[0], (ShapeVec{9, 32}));
  EXPECT_EQ(RunShapeFn("nn.batch_matmul", {{2, 9, 16}, {2, 5, 16}})[0],
            (ShapeVec{2, 9, 5}));
}

TEST(ShapeFunc, ConcatSumsAxis) {
  ir::Attrs attrs;
  attrs.Set("axis", 1);
  EXPECT_EQ(RunShapeFn("concat", {{2, 3}, {2, 5}}, {}, attrs)[0],
            (ShapeVec{2, 8}));
}

TEST(ShapeFunc, SplitDividesEvenly) {
  ir::Attrs attrs;
  attrs.Set("sections", int64_t{4}).Set("axis", 1);
  auto out = RunShapeFn("split", {{1, 8}}, {}, attrs);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], (ShapeVec{1, 2}));
  ir::Attrs bad;
  bad.Set("sections", int64_t{3}).Set("axis", 1);
  EXPECT_THROW(RunShapeFn("split", {{1, 8}}, {}, bad), Error);
}

TEST(ShapeFunc, LSTMCellEmitsTwoStates) {
  auto out = RunShapeFn("nn.lstm_cell", {{1, 32}, {1, 8}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (ShapeVec{1, 8}));
  EXPECT_EQ(out[1], (ShapeVec{1, 8}));
}

TEST(ShapeFunc, ReshapeRuntimeInference) {
  ir::Attrs attrs;
  attrs.Set("newshape", std::vector<int64_t>{0, -1});
  EXPECT_EQ(RunShapeFn("reshape", {{5, 4, 3}}, {}, attrs)[0], (ShapeVec{5, 12}));
  ir::Attrs bad;
  bad.Set("newshape", std::vector<int64_t>{7});
  EXPECT_THROW(RunShapeFn("reshape", {{5, 4}}, {}, bad), Error);
}

TEST(ShapeFunc, SumKeepdimsVariants) {
  ir::Attrs keep;
  keep.Set("axis", int64_t{1}).Set("keepdims", int64_t{1});
  EXPECT_EQ(RunShapeFn("sum", {{2, 5}}, {}, keep)[0], (ShapeVec{2, 1}));
  ir::Attrs drop;
  drop.Set("axis", int64_t{1}).Set("keepdims", int64_t{0});
  EXPECT_EQ(RunShapeFn("sum", {{2, 5}}, {}, drop)[0], (ShapeVec{2}));
}

// ---- data-dependent mode -----------------------------------------------------

TEST(ShapeFunc, ArangeComputesLengthFromValues) {
  auto mk = [](int64_t v) { return NDArray::Scalar<int64_t>(v); };
  EXPECT_EQ(RunShapeFn("arange", {{}, {}, {}}, {mk(0), mk(10), mk(1)})[0],
            (ShapeVec{10}));
  EXPECT_EQ(RunShapeFn("arange", {{}, {}, {}}, {mk(0), mk(10), mk(3)})[0],
            (ShapeVec{4}));
  EXPECT_EQ(RunShapeFn("arange", {{}, {}, {}}, {mk(10), mk(0), mk(-2)})[0],
            (ShapeVec{5}));
  // Empty range clamps to zero.
  EXPECT_EQ(RunShapeFn("arange", {{}, {}, {}}, {mk(5), mk(5), mk(1)})[0],
            (ShapeVec{0}));
  EXPECT_THROW(RunShapeFn("arange", {{}, {}, {}}, {mk(0), mk(1), mk(0)}), Error);
}

TEST(ShapeFunc, UniqueCountsDistinctValues) {
  NDArray x = NDArray::FromVector<int64_t>({3, 1, 3, 3, 2}, {5});
  EXPECT_EQ(RunShapeFn("unique", {{5}}, {x})[0], (ShapeVec{3}));
}

TEST(ShapeFunc, SliceRowsReadsCount) {
  NDArray data = NDArray::Empty({6, 4}, DataType::Float32());
  NDArray count = NDArray::Scalar<int64_t>(2);
  EXPECT_EQ(RunShapeFn("slice_rows", {{6, 4}, {}}, {data, count})[0],
            (ShapeVec{2, 4}));
  NDArray too_many = NDArray::Scalar<int64_t>(9);
  EXPECT_THROW(RunShapeFn("slice_rows", {{6, 4}, {}}, {data, too_many}), Error);
}

TEST(ShapeFunc, DataDependentFnsRequireData) {
  EXPECT_THROW(RunShapeFn("arange", {{}, {}, {}}, {}), Error);
}

// ---- upper-bound mode ----------------------------------------------------------

TEST(ShapeFunc, NMSReturnsUpperBound) {
  auto out = RunShapeFn("nn.nms", {{17, 5}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (ShapeVec{17, 5})) << "upper bound is the input size";
  EXPECT_TRUE(out[1].empty()) << "second output is the scalar true count";
}

// ---- registry metadata ----------------------------------------------------------

TEST(ShapeFunc, ModesAreDeclaredCorrectly) {
  op::EnsureOpsRegistered();
  auto mode = [](const char* name) {
    return OpRegistry::Global()->Get(name).shape_mode;
  };
  EXPECT_EQ(mode("add"), ShapeFuncMode::kDataIndependent);
  EXPECT_EQ(mode("nn.dense"), ShapeFuncMode::kDataIndependent);
  EXPECT_EQ(mode("arange"), ShapeFuncMode::kDataDependent);
  EXPECT_EQ(mode("unique"), ShapeFuncMode::kDataDependent);
  EXPECT_EQ(mode("slice_rows"), ShapeFuncMode::kDataDependent);
  EXPECT_EQ(mode("nn.nms"), ShapeFuncMode::kUpperBound);
}

TEST(ShapeFunc, EveryDataIndependentOpHasAShapeFn) {
  op::EnsureOpsRegistered();
  for (const auto& name : OpRegistry::Global()->ListNames()) {
    const auto& info = OpRegistry::Global()->Get(name);
    // Dialect ops are lowered to instructions and need no shape function.
    if (name.rfind("memory.", 0) == 0 || name.rfind("vm.", 0) == 0) continue;
    EXPECT_TRUE(info.shape_fn != nullptr)
        << "operator '" << name << "' is missing its shape function";
    EXPECT_TRUE(info.type_rel != nullptr)
        << "operator '" << name << "' is missing its type relation";
  }
}

}  // namespace
}  // namespace nimble
