// Pass tests: ANF invariants, constant folding, DCE, operator fusion and
// its dynamic-shape policy, LSTM-cell pattern fusion, ManifestAlloc
// structure, MemoryPlan safety properties, and device placement.
#include <gtest/gtest.h>

#include "src/ir/printer.h"
#include "src/ir/visitor.h"
#include "src/op/registry.h"
#include "src/pass/memory.h"
#include "src/pass/transforms.h"
#include "src/pass/type_infer.h"

namespace nimble {
namespace {

using namespace ir;  // NOLINT

int CountOpCalls(const Expr& e, const std::string& name) {
  int count = 0;
  PostOrderVisit(e, [&](const Expr& x) {
    if (IsCallToOp(x, name)) count++;
  });
  return count;
}

/// ANF invariant: every call argument is a Var or Constant.
bool IsANF(const Expr& e) {
  bool ok = true;
  PostOrderVisit(e, [&](const Expr& x) {
    if (x->kind() != ExprKind::kCall) return;
    for (const Expr& a : AsCall(x)->args) {
      if (a->kind() != ExprKind::kVar && a->kind() != ExprKind::kConstant) {
        ok = false;
      }
    }
  });
  return ok;
}

TEST(ANF, FlattensNestedCalls) {
  Module mod;
  Var x = MakeVar("x", TensorType(std::vector<int64_t>{2}));
  mod.Add("main",
          MakeFunction({x}, op::Call1("sigmoid",
                                      op::Call2("add", x, FloatConst(1.0f)))));
  pass::ToANF(&mod);
  Function fn = mod.Lookup("main");
  EXPECT_TRUE(IsANF(fn));
  EXPECT_EQ(fn->body->kind(), ExprKind::kLet);
}

TEST(ANF, PreservesSharing) {
  // let-free DAG: t = add(x,x) used twice must be bound exactly once.
  Module mod;
  Var x = MakeVar("x", TensorType(std::vector<int64_t>{2}));
  Expr t = op::Call2("add", x, x);
  mod.Add("main", MakeFunction({x}, op::Call2("multiply", t, t)));
  pass::ToANF(&mod);
  EXPECT_EQ(CountOpCalls(mod.Lookup("main"), "add"), 1)
      << "shared subexpression must not be duplicated";
}

TEST(ANF, BranchesBecomeScopes) {
  Module mod;
  Var c = MakeVar("c", ScalarType(DataType::Bool()));
  Var x = MakeVar("x", TensorType(std::vector<int64_t>{2}));
  mod.Add("main",
          MakeFunction({c, x}, MakeIf(c, op::Call1("sigmoid", x),
                                      op::Call1("tanh", x))));
  pass::ToANF(&mod);
  EXPECT_TRUE(IsANF(mod.Lookup("main")));
}

TEST(FoldConstants, EvaluatesConstantSubgraphs) {
  Module mod;
  Var x = MakeVar("x", ScalarType(DataType::Float32()));
  Expr two = FloatConst(2.0f);
  Expr four = op::Call2("multiply", two, two);  // constant
  mod.Add("main", MakeFunction({x}, op::Call2("add", x, four)));
  pass::InferTypes(&mod);
  pass::FoldConstants(&mod);
  Function fn = mod.Lookup("main");
  EXPECT_EQ(CountOpCalls(fn, "multiply"), 0);
  // The surviving add has a folded constant argument 4.0.
  bool found = false;
  PostOrderVisit(fn, [&](const Expr& e) {
    if (e->kind() == ExprKind::kConstant) {
      const auto& d = AsConstant(e)->data;
      if (d.dtype() == DataType::Float32() && d.data<float>()[0] == 4.0f) {
        found = true;
      }
    }
  });
  EXPECT_TRUE(found);
}

TEST(FoldConstants, SkipsDataDependentOps) {
  Module mod;
  Var x = MakeVar("x", ScalarType(DataType::Float32()));
  Expr a = op::Call3("arange", IntConst(0), IntConst(5), IntConst(1));
  mod.Add("main", MakeFunction({x}, MakeLet(MakeVar("t"), a, x)));
  pass::InferTypes(&mod);
  pass::FoldConstants(&mod);
  EXPECT_EQ(CountOpCalls(mod.Lookup("main"), "arange"), 1)
      << "dynamic-output op must not be folded";
}

TEST(DCE, RemovesUnusedPureBindings) {
  Module mod;
  Var x = MakeVar("x", TensorType(std::vector<int64_t>{2}));
  Var dead = MakeVar("dead");
  mod.Add("main", MakeFunction(
                      {x}, MakeLet(dead, op::Call2("add", x, x), x)));
  pass::DeadCodeElim(&mod);
  EXPECT_EQ(CountOpCalls(mod.Lookup("main"), "add"), 0);
}

TEST(DCE, KeepsEffectfulBindings) {
  Module mod;
  Var x = MakeVar("x", TensorType(std::vector<int64_t>{2}));
  Var dead = MakeVar("dead");
  mod.Add("main",
          MakeFunction({x}, MakeLet(dead, op::Call1("memory.kill", x), x)));
  pass::DeadCodeElim(&mod);
  EXPECT_EQ(CountOpCalls(mod.Lookup("main"), "memory.kill"), 1);
}

TEST(DCE, CascadesThroughChains) {
  Module mod;
  Var x = MakeVar("x", TensorType(std::vector<int64_t>{2}));
  Var a = MakeVar("a"), b = MakeVar("b");
  // b depends on a; both dead.
  mod.Add("main",
          MakeFunction({x}, MakeLet(a, op::Call2("add", x, x),
                                    MakeLet(b, op::Call1("sigmoid", a), x))));
  pass::DeadCodeElim(&mod);
  EXPECT_EQ(CountOpCalls(mod.Lookup("main"), "add"), 0);
  EXPECT_EQ(CountOpCalls(mod.Lookup("main"), "sigmoid"), 0);
}

// ---- fusion -------------------------------------------------------------------

TEST(FuseOps, DenseBiasActivationChain) {
  Module mod;
  Var x = MakeVar("x", TensorType({4, 8}));
  Var w = MakeVar("w", TensorType({16, 8}));
  Var b = MakeVar("b", TensorType(std::vector<int64_t>{16}));
  Expr e = op::Call1("relu", op::Call2("nn.bias_add", op::Call2("nn.dense", x, w), b));
  mod.Add("main", MakeFunction({x, w, b}, e));
  pass::ToANF(&mod);
  pass::InferTypes(&mod);
  auto stats = pass::FuseOps(&mod);
  EXPECT_EQ(stats.groups_created, 1);
  EXPECT_GE(stats.ops_fused, 3);
  Function fn = mod.Lookup("main");
  EXPECT_EQ(CountOpCalls(fn, "fused_dense"), 1);
  EXPECT_EQ(CountOpCalls(fn, "nn.dense"), 0);
  EXPECT_EQ(CountOpCalls(fn, "relu"), 0);
}

TEST(FuseOps, ElemwiseChainBecomesOneKernel) {
  Module mod;
  Var x = MakeVar("x", TensorType(std::vector<int64_t>{32}));
  Var y = MakeVar("y", TensorType(std::vector<int64_t>{32}));
  Expr e = op::Call1("tanh", op::Call1("sigmoid", op::Call2("add", x, y)));
  mod.Add("main", MakeFunction({x, y}, e));
  pass::ToANF(&mod);
  pass::InferTypes(&mod);
  auto stats = pass::FuseOps(&mod);
  EXPECT_EQ(stats.groups_created, 1);
  EXPECT_EQ(CountOpCalls(mod.Lookup("main"), "fused_elemwise"), 1);
}

TEST(FuseOps, MultiUseIntermediateBlocksFusion) {
  // d is consumed twice: the chain must not absorb it.
  Module mod;
  Var x = MakeVar("x", TensorType({4, 8}));
  Var w = MakeVar("w", TensorType({4, 8}));
  Var d = MakeVar("d");
  Expr dense = op::Call2("nn.dense", x, w);
  Expr body = MakeLet(
      d, dense, op::Call2("add", op::Call1("sigmoid", d), d));
  mod.Add("main", MakeFunction({x, w}, body));
  pass::ToANF(&mod);
  pass::InferTypes(&mod);
  pass::FuseOps(&mod);
  EXPECT_EQ(CountOpCalls(mod.Lookup("main"), "nn.dense"), 1)
      << "multi-use dense must stay unfused";
}

TEST(FuseOps, OpaqueOpsNeverFuse) {
  Module mod;
  Var x = MakeVar("x", TensorType(std::vector<int64_t>{16}, DataType::Int64()));
  // unique is opaque/data-dependent: the chain add -> unique must not fuse.
  Expr e = op::Call1("unique", x);
  Var t = MakeVar("t");
  mod.Add("main", MakeFunction({x}, MakeLet(t, e, t)));
  pass::ToANF(&mod);
  pass::InferTypes(&mod);
  auto stats = pass::FuseOps(&mod);
  EXPECT_EQ(stats.groups_created, 0);
  EXPECT_EQ(CountOpCalls(mod.Lookup("main"), "unique"), 1);
}

TEST(FuseLSTM, RecognizesCanonicalCell) {
  Module mod;
  Var gates = MakeVar("g", TensorType({1, 32}));
  Var c = MakeVar("c", TensorType({1, 8}));
  Expr sp = op::Call1("split", gates, Attrs().Set("sections", 4).Set("axis", 1));
  Expr i = op::Call1("sigmoid", MakeTupleGetItem(sp, 0));
  Expr f = op::Call1("sigmoid", MakeTupleGetItem(sp, 1));
  Expr g = op::Call1("tanh", MakeTupleGetItem(sp, 2));
  Expr o = op::Call1("sigmoid", MakeTupleGetItem(sp, 3));
  Expr c2 = op::Call2("add", op::Call2("multiply", f, c),
                      op::Call2("multiply", i, g));
  Expr h2 = op::Call2("multiply", o, op::Call1("tanh", c2));
  mod.Add("main", MakeFunction({gates, c}, MakeTuple({h2, c2})));
  int fused = pass::FuseLSTMCell(&mod);
  EXPECT_EQ(fused, 1);
  EXPECT_EQ(CountOpCalls(mod.Lookup("main"), "nn.lstm_cell"), 1);
  EXPECT_EQ(CountOpCalls(mod.Lookup("main"), "split"), 0);
}

TEST(FuseLSTM, RejectsWrongGateOrder) {
  Module mod;
  Var gates = MakeVar("g", TensorType({1, 32}));
  Var c = MakeVar("c", TensorType({1, 8}));
  Expr sp = op::Call1("split", gates, Attrs().Set("sections", 4).Set("axis", 1));
  // Swap the forget/input gate indices: pattern must not match.
  Expr i = op::Call1("sigmoid", MakeTupleGetItem(sp, 1));
  Expr f = op::Call1("sigmoid", MakeTupleGetItem(sp, 0));
  Expr g = op::Call1("tanh", MakeTupleGetItem(sp, 2));
  Expr o = op::Call1("sigmoid", MakeTupleGetItem(sp, 3));
  Expr c2 = op::Call2("add", op::Call2("multiply", f, c),
                      op::Call2("multiply", i, g));
  Expr h2 = op::Call2("multiply", o, op::Call1("tanh", c2));
  mod.Add("main", MakeFunction({gates, c}, MakeTuple({h2, c2})));
  EXPECT_EQ(pass::FuseLSTMCell(&mod), 0);
}

// ---- ManifestAlloc -------------------------------------------------------------

Module PreparedModule(Function fn) {
  Module mod;
  mod.Add("main", fn);
  pass::InferTypes(&mod);
  pass::ToANF(&mod);
  pass::InferTypes(&mod);
  return mod;
}

TEST(ManifestAlloc, StaticOpGetsStaticAlloc) {
  Var x = MakeVar("x", TensorType({4, 4}));
  Module mod = PreparedModule(MakeFunction({x}, op::Call1("sigmoid", x)));
  pass::ManifestAlloc(&mod);
  Function fn = mod.Lookup("main");
  EXPECT_EQ(CountOpCalls(fn, "memory.alloc_storage"), 1);
  EXPECT_EQ(CountOpCalls(fn, "memory.alloc_tensor"), 1);
  EXPECT_EQ(CountOpCalls(fn, "memory.invoke_mut"), 1);
  EXPECT_EQ(CountOpCalls(fn, "vm.shape_func"), 0)
      << "static shapes need no runtime shape function";
  EXPECT_EQ(CountOpCalls(fn, "sigmoid"), 0);
}

TEST(ManifestAlloc, DynamicOpGetsShapeFunction) {
  Var x = MakeVar("x", TensorType({Dim::Any(), Dim::Static(4)}));
  Var y = MakeVar("y", TensorType({Dim::Any(), Dim::Static(4)}));
  Module mod = PreparedModule(MakeFunction({x, y}, op::Call2("add", x, y)));
  pass::ManifestAlloc(&mod);
  Function fn = mod.Lookup("main");
  EXPECT_EQ(CountOpCalls(fn, "vm.shape_func"), 1);
  EXPECT_EQ(CountOpCalls(fn, "vm.shape_of"), 2);
  // shape-tensor alloc + output alloc
  EXPECT_EQ(CountOpCalls(fn, "memory.alloc_storage"), 2);
  EXPECT_EQ(CountOpCalls(fn, "memory.invoke_mut"), 1);
}

TEST(ManifestAlloc, MultiOutputOpAllocatesPerOutput) {
  Var x = MakeVar("x", TensorType({2, 8}));
  Module mod = PreparedModule(MakeFunction(
      {x}, MakeTupleGetItem(
               op::Call1("split", x, Attrs().Set("sections", 4).Set("axis", 1)),
               0)));
  pass::ManifestAlloc(&mod);
  Function fn = mod.Lookup("main");
  EXPECT_EQ(CountOpCalls(fn, "memory.alloc_tensor"), 4);
}

TEST(ManifestAlloc, ReshapeBecomesReshapeTensor) {
  Var x = MakeVar("x", TensorType({4, 6}));
  Module mod = PreparedModule(MakeFunction(
      {x}, op::Call1("reshape", x,
                     Attrs().Set("newshape", std::vector<int64_t>{3, 8}))));
  pass::ManifestAlloc(&mod);
  Function fn = mod.Lookup("main");
  EXPECT_EQ(CountOpCalls(fn, "vm.reshape_tensor"), 1);
  EXPECT_EQ(CountOpCalls(fn, "memory.invoke_mut"), 0)
      << "reshape must not launch a kernel";
}

// ---- MemoryPlan ----------------------------------------------------------------

TEST(MemoryPlan, CoalescesDeadStorages) {
  // Chain of same-shape ops: intermediates die immediately, storage reused.
  Var x = MakeVar("x", TensorType(std::vector<int64_t>{64}));
  Expr e = x;
  for (int i = 0; i < 6; ++i) e = op::Call1("sigmoid", e);
  Module mod = PreparedModule(MakeFunction({x}, e));
  pass::ManifestAlloc(&mod);
  auto stats = pass::MemoryPlan(&mod);
  EXPECT_EQ(stats.storage_allocs_before, 6);
  EXPECT_LE(stats.storage_allocs_after, 3)
      << "dead intermediates must share storage";
  EXPECT_GT(stats.kills_inserted, 0);
}

TEST(MemoryPlan, EscapingTensorsAreNeverReused) {
  // Both intermediates are returned in a tuple: no reuse is legal.
  Var x = MakeVar("x", TensorType(std::vector<int64_t>{64}));
  Expr a = op::Call1("sigmoid", x);
  Expr b = op::Call1("tanh", x);
  Module mod = PreparedModule(MakeFunction({x}, MakeTuple({a, b})));
  pass::ManifestAlloc(&mod);
  auto stats = pass::MemoryPlan(&mod);
  EXPECT_EQ(stats.storage_allocs_after, stats.storage_allocs_before);
}

TEST(MemoryPlan, MismatchedSizesNotMerged) {
  Var x = MakeVar("x", TensorType(std::vector<int64_t>{64}));
  Var w = MakeVar("w", TensorType({1000, 64}));
  // [1000] output cannot reuse a [64] storage.
  Expr small = op::Call1("sigmoid", x);
  Expr big = op::Call2("nn.dense",
                       op::Call1("expand_dims", small, Attrs().Set("axis", 0)), w);
  Module mod = PreparedModule(MakeFunction({x, w}, big));
  pass::ManifestAlloc(&mod);
  auto stats = pass::MemoryPlan(&mod);
  EXPECT_EQ(stats.storage_allocs_after, stats.storage_allocs_before);
}

// ---- device placement ----------------------------------------------------------

TEST(DevicePlace, ShapeMachineryPinnedToCPU) {
  Var x = MakeVar("x", TensorType({Dim::Any(), Dim::Static(4)}));
  Var y = MakeVar("y", TensorType({Dim::Any(), Dim::Static(4)}));
  Module mod = PreparedModule(MakeFunction({x, y}, op::Call2("add", x, y)));
  pass::ManifestAlloc(&mod);
  auto stats = pass::DevicePlacement(&mod, runtime::Device::SimGPU());
  EXPECT_GT(stats.nodes_on_cpu, 0) << "shape tensors belong to the CPU domain";
  EXPECT_GT(stats.nodes_on_device, 0) << "kernel data belongs to the device";
  EXPECT_EQ(stats.copies_inserted, 0)
      << "data-independent shape functions read only shape tensors";
}

TEST(DevicePlace, DataDependentShapeFuncForcesCopy) {
  // slice_rows' shape function reads tensor *values*, which live on the
  // accelerator -> exactly one device_copy must be inserted per data input.
  Var x = MakeVar("x", TensorType({4, 2}));
  Var n = MakeVar("n", ScalarType(DataType::Int64()));
  Expr sliced = op::Call2("slice_rows", op::Call1("sigmoid", x), n);
  Module mod = PreparedModule(MakeFunction({x, n}, sliced));
  pass::ManifestAlloc(&mod);
  auto stats = pass::DevicePlacement(&mod, runtime::Device::SimGPU());
  EXPECT_GE(stats.copies_inserted, 1);
  EXPECT_GE(CountOpCalls(mod.Lookup("main"), "device_copy"), 1);
}

TEST(DevicePlace, CPUTargetNeedsNoCopies) {
  Var x = MakeVar("x", TensorType({4, 2}));
  Var n = MakeVar("n", ScalarType(DataType::Int64()));
  Expr sliced = op::Call2("slice_rows", op::Call1("sigmoid", x), n);
  Module mod = PreparedModule(MakeFunction({x, n}, sliced));
  pass::ManifestAlloc(&mod);
  auto stats = pass::DevicePlacement(&mod, runtime::Device::CPU());
  EXPECT_EQ(stats.copies_inserted, 0);
}

TEST(DevicePlace, StampsStorageDeviceAttr) {
  Var x = MakeVar("x", TensorType({4, 4}));
  Module mod = PreparedModule(MakeFunction({x}, op::Call1("sigmoid", x)));
  pass::ManifestAlloc(&mod);
  pass::DevicePlacement(&mod, runtime::Device::SimGPU());
  bool saw_device_storage = false;
  PostOrderVisit(mod.Lookup("main"), [&](const Expr& e) {
    if (!IsCallToOp(e, "memory.alloc_storage")) return;
    auto dev = AsCall(e)->attrs.GetDevice("device", runtime::Device::CPU());
    if (dev == runtime::Device::SimGPU()) saw_device_storage = true;
  });
  EXPECT_TRUE(saw_device_storage);
}

}  // namespace
}  // namespace nimble
