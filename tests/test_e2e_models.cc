// End-to-end tests: build each dynamic model, run the full compile pipeline,
// execute on the VM, and compare numerics against plain-C++ references.
#include <gtest/gtest.h>

#include "src/core/compiler.h"
#include "src/models/bert.h"
#include "src/models/lstm.h"
#include "src/models/tree_lstm.h"
#include "src/models/workloads.h"
#include "src/vm/vm.h"

namespace nimble {
namespace {

using runtime::AsTensor;
using runtime::MakeTensor;
using runtime::NDArray;

void ExpectClose(const NDArray& a, const NDArray& b, float tol = 2e-4f) {
  ASSERT_EQ(a.shape(), b.shape());
  const float* pa = a.data<float>();
  const float* pb = b.data<float>();
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    ASSERT_NEAR(pa[i], pb[i], tol) << "mismatch at flat index " << i;
  }
}

TEST(E2E, LSTMSingleLayerMatchesReference) {
  models::LSTMConfig config;
  config.input_size = 16;
  config.hidden_size = 24;
  config.num_layers = 1;
  auto model = models::BuildLSTM(config);

  core::CompileResult compiled = core::Compile(model.module);
  EXPECT_GE(compiled.lstm_cells_fused, 1);
  vm::VirtualMachine machine(compiled.executable);

  support::Rng rng(3);
  for (int64_t len : {1, 3, 7}) {
    NDArray x = models::RandomSequence(len, config.input_size, rng);
    auto out = machine.Invoke(
        "main", {MakeTensor(x), MakeTensor(NDArray::Scalar<int64_t>(len))});
    NDArray expected = models::RunLSTMReference(model.weights, x);
    ExpectClose(AsTensor(out), expected);
  }
}

TEST(E2E, LSTMTwoLayerMatchesReference) {
  models::LSTMConfig config;
  config.input_size = 12;
  config.hidden_size = 16;
  config.num_layers = 2;
  auto model = models::BuildLSTM(config);
  core::CompileResult compiled = core::Compile(model.module);
  vm::VirtualMachine machine(compiled.executable);

  support::Rng rng(4);
  NDArray x = models::RandomSequence(5, config.input_size, rng);
  auto out = machine.Invoke(
      "main", {MakeTensor(x), MakeTensor(NDArray::Scalar<int64_t>(5))});
  ExpectClose(AsTensor(out), models::RunLSTMReference(model.weights, x));
}

TEST(E2E, TreeLSTMMatchesReference) {
  models::TreeLSTMConfig config;
  config.input_size = 10;
  config.hidden_size = 12;
  auto model = models::BuildTreeLSTM(config);
  core::CompileResult compiled = core::Compile(model.module);
  vm::VirtualMachine machine(compiled.executable);

  support::Rng rng(5);
  for (int leaves : {1, 2, 9}) {
    auto tree = models::RandomTree(leaves, config.input_size, rng);
    auto out = machine.Invoke("main", {models::TreeToObject(*tree)});
    NDArray expected = models::RunTreeLSTMReference(model.weights, *tree);
    ExpectClose(AsTensor(out), expected);
  }
}

TEST(E2E, BERTMatchesReference) {
  models::BERTConfig config;
  config.num_layers = 1;
  config.hidden = 32;
  config.num_heads = 2;
  config.ffn_hidden = 64;
  config.vocab = 50;
  auto model = models::BuildBERT(config);
  core::CompileResult compiled = core::Compile(model.module);
  vm::VirtualMachine machine(compiled.executable);

  support::Rng rng(6);
  for (int64_t len : {1, 5, 13}) {
    auto ids = models::RandomTokenIds(len, config.vocab, rng);
    NDArray ids_arr = NDArray::FromVector(ids, {len});
    auto out = machine.Invoke("main", {MakeTensor(ids_arr)});
    ExpectClose(AsTensor(out), models::RunBERTReference(model, ids), 5e-4f);
  }
}

}  // namespace
}  // namespace nimble

// ---- property sweeps and cross-cutting end-to-end checks ----------------------

#include <sstream>

#include "src/codegen/dispatch.h"

namespace nimble {
namespace {

/// LSTM correctness must hold for every sequence length (every loop
/// iteration count), not just the lengths smoke-tested above.
class LSTMLengthSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(LSTMLengthSweep, MatchesReferenceAtEveryLength) {
  static models::LSTMModel model = [] {
    models::LSTMConfig config;
    config.input_size = 8;
    config.hidden_size = 12;
    return models::BuildLSTM(config);
  }();
  static std::shared_ptr<vm::Executable> exec = [] {
    ir::Module mod = model.module;
    return core::Compile(mod).executable;
  }();
  vm::VirtualMachine machine(exec);
  int64_t len = GetParam();
  support::Rng rng(100 + static_cast<uint64_t>(len));
  NDArray x = models::RandomSequence(len, 8, rng);
  auto out = machine.Invoke(
      "main", {MakeTensor(x), MakeTensor(NDArray::Scalar<int64_t>(len))});
  ExpectClose(AsTensor(out), models::RunLSTMReference(model.weights, x));
}

INSTANTIATE_TEST_SUITE_P(Lengths, LSTMLengthSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 16,
                                           21, 32, 47));

/// BERT correctness must hold for every residue class of the dispatch tile
/// factor, for every dispatch configuration — the shape-specialized kernels
/// and the checked fallback must be bit-compatible in what they compute.
class BERTResidueSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int>> {};

TEST_P(BERTResidueSweep, EveryResidueAndDispatchConfig) {
  static models::BERTModel model = [] {
    models::BERTConfig config;
    config.num_layers = 1;
    config.hidden = 16;
    config.num_heads = 2;
    config.ffn_hidden = 32;
    config.vocab = 30;
    return models::BuildBERT(config);
  }();
  auto [len, variants] = GetParam();
  ir::Module mod = model.module;
  core::CompileOptions opts;
  opts.dense_dispatch_variants = variants;
  auto exec = core::Compile(mod, opts).executable;
  // Dispatch configuration is per executable — no global state to restore
  // between sweep points, and other executables are unaffected.
  ASSERT_EQ(exec->dispatch_table.num_variants(), variants);
  vm::VirtualMachine machine(exec);
  support::Rng rng(200 + static_cast<uint64_t>(len));
  auto ids = models::RandomTokenIds(len, 30, rng);
  auto out = machine.Invoke(
      "main", {MakeTensor(NDArray::FromVector(ids, {len}))});
  ExpectClose(AsTensor(out), models::RunBERTReference(model, ids), 5e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    ResiduesTimesDispatch, BERTResidueSweep,
    ::testing::Combine(::testing::Values(8, 9, 10, 11, 12, 13, 14, 15),
                       ::testing::Values(1, 2, 4, 8)));

TEST(E2E, TreeLSTMSweepOverSizes) {
  models::TreeLSTMConfig config;
  config.input_size = 6;
  config.hidden_size = 8;
  auto model = models::BuildTreeLSTM(config);
  auto compiled = core::Compile(model.module);
  vm::VirtualMachine machine(compiled.executable);
  support::Rng rng(300);
  for (int leaves = 1; leaves <= 24; leaves += 3) {
    auto tree = models::RandomTree(leaves, config.input_size, rng);
    auto out = machine.Invoke("main", {models::TreeToObject(*tree)});
    ExpectClose(AsTensor(out),
                models::RunTreeLSTMReference(model.weights, *tree));
  }
}

TEST(E2E, SerializedModelReproducesResults) {
  models::LSTMConfig config;
  config.input_size = 6;
  config.hidden_size = 8;
  auto model = models::BuildLSTM(config);
  auto compiled = core::Compile(model.module);

  std::stringstream buffer;
  compiled.executable->Save(buffer);
  vm::VirtualMachine original(compiled.executable);
  vm::VirtualMachine restored(vm::Executable::Load(buffer));

  support::Rng rng(400);
  NDArray x = models::RandomSequence(5, 6, rng);
  auto args = [&] {
    return std::vector<runtime::ObjectRef>{
        MakeTensor(x), MakeTensor(NDArray::Scalar<int64_t>(5))};
  };
  NDArray a = AsTensor(original.Invoke("main", args()));
  NDArray b = AsTensor(restored.Invoke("main", args()));
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    ASSERT_EQ(a.data<float>()[i], b.data<float>()[i]);
  }
}

TEST(E2E, SimGPUPlacementStillComputesCorrectly) {
  // Compiling for the simulated accelerator exercises device annotation and
  // device_copy insertion; execution is host-simulated, so numerics must be
  // identical to the CPU compile.
  models::BERTConfig config;
  config.num_layers = 1;
  config.hidden = 16;
  config.num_heads = 2;
  config.ffn_hidden = 32;
  config.vocab = 20;
  auto model = models::BuildBERT(config);
  ir::Module mod = model.module;
  core::CompileOptions opts;
  opts.kernel_device = runtime::Device::SimGPU();
  auto compiled = core::Compile(mod, opts);
  EXPECT_GT(compiled.devices.nodes_on_cpu, 0);
  EXPECT_GT(compiled.devices.nodes_on_device, 0);
  vm::VirtualMachine machine(compiled.executable);
  support::Rng rng(500);
  auto ids = models::RandomTokenIds(7, 20, rng);
  auto out = machine.Invoke("main", {MakeTensor(NDArray::FromVector(ids, {7}))});
  ExpectClose(AsTensor(out), models::RunBERTReference(model, ids), 5e-4f);
}

TEST(E2E, CompileReportsOptimizationStats) {
  models::LSTMConfig config;
  config.input_size = 8;
  config.hidden_size = 8;
  config.num_layers = 2;
  auto model = models::BuildLSTM(config);
  auto compiled = core::Compile(model.module);
  EXPECT_EQ(compiled.lstm_cells_fused, 2);

  // With the batched twins emitted, FuseLSTMCell fires in
  // @lstm_loop_batched, @lstm_loop_batched_exact, and the continuous
  // single-step twin @main_step as well — every batched recurrence keeps
  // the canonical cell dataflow (2 layers x 4 bodies).
  config.emit_batched = true;
  auto batched_model = models::BuildLSTM(config);
  auto batched_compiled = core::Compile(batched_model.module);
  EXPECT_EQ(batched_compiled.lstm_cells_fused, 8);
  EXPECT_GT(compiled.fusion.groups_created, 0);
  EXPECT_GT(compiled.memory.kills_inserted, 0);
  EXPECT_GT(compiled.executable->NumInstructions(), 0u);
}

}  // namespace
}  // namespace nimble
