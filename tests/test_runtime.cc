// Unit tests for the tensor runtime: dtypes, devices, allocators, NDArray,
// and the tagged object system.
#include <gtest/gtest.h>

#include "src/runtime/allocator.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/object.h"
#include "src/support/rng.h"

namespace nimble {
namespace {

using namespace runtime;  // NOLINT

TEST(DataTypeTest, SizesAndNames) {
  EXPECT_EQ(DataType::Float32().bytes(), 4u);
  EXPECT_EQ(DataType::Float64().bytes(), 8u);
  EXPECT_EQ(DataType::Int64().bytes(), 8u);
  EXPECT_EQ(DataType::Bool().bytes(), 1u);
  EXPECT_EQ(DataType::Float32().ToString(), "float32");
  EXPECT_EQ(DataType::FromString("int64"), DataType::Int64());
  EXPECT_THROW(DataType::FromString("float16"), Error);
}

TEST(DataTypeTest, Predicates) {
  EXPECT_TRUE(DataType::Float32().is_float());
  EXPECT_FALSE(DataType::Float32().is_int());
  EXPECT_TRUE(DataType::Int32().is_int());
}

TEST(DeviceTest, EqualityAndNames) {
  EXPECT_EQ(Device::CPU(), Device::CPU());
  EXPECT_NE(Device::CPU(), Device::SimGPU());
  EXPECT_NE(Device::SimGPU(0), Device::SimGPU(1));
  EXPECT_EQ(Device::SimGPU().ToString(), "simgpu(0)");
  EXPECT_TRUE(Device::CPU().is_cpu());
  EXPECT_FALSE(Device::SimGPU().is_cpu());
}

TEST(NDArrayTest, EmptyAndFill) {
  NDArray a = NDArray::Empty({2, 3}, DataType::Float32());
  EXPECT_EQ(a.num_elements(), 6);
  EXPECT_EQ(a.nbytes(), 24u);
  a.Fill(1.5);
  for (int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(a.data<float>()[i], 1.5f);
}

TEST(NDArrayTest, FromVectorAndAt) {
  NDArray a = NDArray::FromVector<float>({1, 2, 3, 4}, {2, 2});
  EXPECT_FLOAT_EQ(a.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(a.at(1, 1), 4.0f);
}

TEST(NDArrayTest, ScalarRoundtrip) {
  NDArray s = NDArray::Scalar<int64_t>(42);
  EXPECT_EQ(s.ndim(), 0);
  EXPECT_EQ(s.num_elements(), 1);
  EXPECT_EQ(s.data<int64_t>()[0], 42);
}

TEST(NDArrayTest, ReshapePreservesData) {
  NDArray a = NDArray::FromVector<float>({1, 2, 3, 4, 5, 6}, {2, 3});
  NDArray b = a.Reshape({3, 2});
  EXPECT_EQ(b.shape(), (ShapeVec{3, 2}));
  EXPECT_EQ(b.raw_data(), a.raw_data()) << "reshape must be zero-copy";
  EXPECT_THROW(a.Reshape({4, 2}), Error);
}

TEST(NDArrayTest, DTypeMismatchThrows) {
  NDArray a = NDArray::Empty({2}, DataType::Float32());
  EXPECT_THROW(a.data<int64_t>(), Error);
}

TEST(NDArrayTest, CopyToCountsCrossDeviceTransfers) {
  NDArray a = NDArray::FromVector<float>({1, 2}, {2});
  int64_t before = DeviceCopyConfig::copies_performed();
  NDArray same = a.CopyTo(Device::CPU());
  EXPECT_EQ(DeviceCopyConfig::copies_performed(), before);
  NDArray other = a.CopyTo(Device::SimGPU());
  EXPECT_EQ(DeviceCopyConfig::copies_performed(), before + 1);
  EXPECT_EQ(other.device(), Device::SimGPU());
  EXPECT_FLOAT_EQ(other.data<float>()[1], 2.0f);
}

TEST(NDArrayTest, ViewIntoSharedStorage) {
  auto storage = GlobalNaiveAllocator()->Alloc(64, 64, Device::CPU());
  NDArray a = NDArray::FromStorage(storage, 0, {4}, DataType::Float32());
  NDArray b = NDArray::FromStorage(storage, 16, {4}, DataType::Float32());
  a.Fill(1.0);
  b.Fill(2.0);
  EXPECT_FLOAT_EQ(a.data<float>()[3], 1.0f);
  EXPECT_FLOAT_EQ(b.data<float>()[0], 2.0f);
  EXPECT_THROW(NDArray::FromStorage(storage, 56, {4}, DataType::Float32()),
               Error);
}

TEST(NDArrayTest, ShapeTensorRoundtrip) {
  ShapeVec shape{3, 1, 7};
  NDArray t = ShapeTensor(shape);
  EXPECT_EQ(t.dtype(), DataType::Int64());
  EXPECT_EQ(ShapeFromTensor(t), shape);
  EXPECT_TRUE(ShapeFromTensor(ShapeTensor({})).empty());
}

TEST(AllocatorTest, NaiveCountsCalls) {
  NaiveAllocator alloc;
  auto a = alloc.Alloc(100, 64, Device::CPU());
  auto b = alloc.Alloc(200, 64, Device::CPU());
  EXPECT_EQ(alloc.stats().alloc_calls, 2);
  EXPECT_EQ(alloc.stats().system_allocs, 2);
  EXPECT_GT(alloc.stats().live_bytes, 0);
  a.reset();
  b.reset();
  EXPECT_EQ(alloc.stats().live_bytes, 0);
}

TEST(AllocatorTest, PoolingRecyclesBlocks) {
  PoolingAllocator pool;
  void* first_ptr;
  {
    auto a = pool.Alloc(1000, 64, Device::CPU());
    first_ptr = a->data;
  }  // returned to pool
  EXPECT_GT(pool.cached_bytes(), 0u);
  auto b = pool.Alloc(1000, 64, Device::CPU());
  EXPECT_EQ(b->data, first_ptr) << "same bucket must be recycled";
  EXPECT_EQ(pool.stats().system_allocs, 1) << "second alloc hits the pool";
}

TEST(AllocatorTest, PoolingSeparatesDevices) {
  PoolingAllocator pool;
  { auto a = pool.Alloc(512, 64, Device::CPU()); }
  auto b = pool.Alloc(512, 64, Device::SimGPU());
  EXPECT_EQ(pool.stats().system_allocs, 2)
      << "different devices must not share buckets";
}

TEST(AllocatorTest, PoolingTrimReleases) {
  PoolingAllocator pool;
  { auto a = pool.Alloc(4096, 64, Device::CPU()); }
  EXPECT_GT(pool.cached_bytes(), 0u);
  pool.Trim();
  EXPECT_EQ(pool.cached_bytes(), 0u);
}

TEST(AllocatorTest, PeakTracksHighWater) {
  NaiveAllocator alloc;
  auto a = alloc.Alloc(1 << 10, 64, Device::CPU());
  int64_t peak1 = alloc.stats().peak_bytes;
  a.reset();
  auto b = alloc.Alloc(1 << 8, 64, Device::CPU());
  EXPECT_EQ(alloc.stats().peak_bytes, peak1) << "peak must not decrease";
}

TEST(ObjectTest, TensorObject) {
  auto obj = MakeTensor(NDArray::Scalar<float>(3.0f));
  EXPECT_EQ(obj->tag(), ObjectTag::kTensor);
  EXPECT_FLOAT_EQ(AsTensor(obj).data<float>()[0], 3.0f);
  EXPECT_THROW(AsADT(obj), Error);
}

TEST(ObjectTest, TupleAndADT) {
  auto t = MakeTuple({MakeTensor(NDArray::Scalar<float>(1.0f)),
                      MakeTensor(NDArray::Scalar<float>(2.0f))});
  EXPECT_EQ(AsADT(t)->ctor_tag, ADTObj::kTupleTag);
  EXPECT_EQ(AsADT(t)->fields.size(), 2u);
  auto node = MakeADT(1, {t});
  EXPECT_EQ(AsADT(node)->ctor_tag, 1u);
  EXPECT_THROW(AsTensor(node), Error);
}

TEST(ObjectTest, ClosureHoldsCaptures) {
  auto captured = MakeTensor(NDArray::Scalar<float>(7.0f));
  auto c = MakeClosure(3, {captured});
  EXPECT_EQ(AsClosure(c)->func_index, 3);
  EXPECT_EQ(AsClosure(c)->captured.size(), 1u);
}

TEST(ObjectTest, ToStringRendersNested) {
  auto t = MakeADT(2, {MakeTensor(NDArray::Scalar<float>(1.0f))});
  std::string s = ObjectToString(t);
  EXPECT_NE(s.find("ctor#2"), std::string::npos);
}

TEST(ObjectTest, ReferenceSemantics) {
  NDArray arr = NDArray::FromVector<float>({1, 2}, {2});
  auto a = MakeTensor(arr);
  auto b = a;  // Move-style register copy: shares the payload.
  AsTensor(b).data<float>()[0] = 9.0f;
  EXPECT_FLOAT_EQ(AsTensor(a).data<float>()[0], 9.0f);
}

}  // namespace
}  // namespace nimble
